//! Node-level performance model: from workload signature to per-rank
//! compute time.
//!
//! A Roofline/ECM-style model (paper §4.1.2 adopts the same view): the
//! compute phase of a step takes
//! `max(t_flops, t_mem) + γ·min(t_flops, t_mem)` per rank (γ = 0.5, the
//! ECM-style partial-overlap penalty: in-core execution and memory
//! transfers overlap imperfectly on Intel server cores), where
//!
//! * `t_flops` follows from the core's SIMD-adjusted instruction
//!   throughput, and
//! * `t_mem` follows from the rank's share of its ccNUMA domain's
//!   saturating memory bandwidth — the mechanism behind the saturation
//!   speedup patterns of `pot3d`, `tealeaf`, `cloverleaf` and `hpgmgfv`.
//!
//! The model also applies the *cache-fit* correction: under strong
//! scaling the per-node share of the working set shrinks; once it
//! approaches the effective LLC (victim L3 + L2, paper footnote 6) the
//! memory traffic collapses and scaling turns superlinear (`weather`,
//! §5.1 case A). Replicated working sets (`soma`) never benefit.

use spechpc_machine::affinity::{Pinning, PinningPolicy};
use spechpc_machine::cluster::ClusterSpec;

use crate::common::signature::WorkloadSignature;

/// Residual fraction of memory traffic that always streams (write
/// allocations, first touches), even for a fully cache-resident set.
const CACHE_TRAFFIC_FLOOR: f64 = 0.12;

/// ECM-style non-overlap factor: the fraction of the shorter of
/// (in-core time, memory time) that does *not* hide behind the longer.
const OVERLAP_PENALTY: f64 = 0.5;

/// Per-step, per-rank timing produced by the model.
#[derive(Debug, Clone)]
pub struct ComputeTimes {
    /// Compute seconds per rank for one step (before communication).
    pub per_rank: Vec<f64>,
    /// Pure in-core time per rank (flops path).
    pub t_flops: Vec<f64>,
    /// Pure memory time per rank (bandwidth path).
    pub t_mem: Vec<f64>,
    /// Core busy fraction per rank (`t_flops / t_step`): stalled cores
    /// draw less package power (paper §4.2).
    pub utilization: Vec<f64>,
    /// Effective main-memory traffic for one step, total bytes, after
    /// the cache-fit correction.
    pub effective_mem_bytes: f64,
    /// Effective L3 traffic for one step, total bytes (victim-cache
    /// bookkeeping: traffic dropped from memory is served by L3).
    pub effective_l3_bytes: f64,
    /// L2 traffic for one step, total bytes.
    pub effective_l2_bytes: f64,
}

impl ComputeTimes {
    /// The slowest rank's compute time — the step's critical path before
    /// communication effects.
    pub fn max_seconds(&self) -> f64 {
        self.per_rank.iter().copied().fold(0.0, f64::max)
    }

    /// Mean core utilization over all ranks.
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization.is_empty() {
            return 0.0;
        }
        self.utilization.iter().sum::<f64>() / self.utilization.len() as f64
    }
}

/// Performance model bound to a cluster and a compact pinning of
/// `nranks` ranks.
#[derive(Debug, Clone)]
pub struct NodeModel {
    cluster: ClusterSpec,
    pinning: Pinning,
}

impl NodeModel {
    /// Model for `nranks` compactly pinned ranks (the paper's setup).
    pub fn new(cluster: &ClusterSpec, nranks: usize) -> Self {
        Self::with_policy(cluster, nranks, PinningPolicy::Compact)
    }

    /// Model with an explicit pinning policy (scatter is used by the
    /// SNC/pinning ablation).
    pub fn with_policy(cluster: &ClusterSpec, nranks: usize, policy: PinningPolicy) -> Self {
        NodeModel {
            cluster: cluster.clone(),
            pinning: Pinning::new(cluster, nranks, policy),
        }
    }

    pub fn nranks(&self) -> usize {
        self.pinning.nprocs()
    }

    pub fn pinning(&self) -> &Pinning {
        &self.pinning
    }

    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Effective per-core instruction throughput in flop/s for a given
    /// signature: the SIMD-weighted mix of vector and scalar peak, scaled
    /// by the code's core efficiency.
    pub fn core_rate(&self, sig: &WorkloadSignature) -> f64 {
        let cpu = &self.cluster.node.cpu;
        let simd_peak = cpu.peak_flops_per_core() * 1e9;
        let scalar_peak = cpu.scalar_flops_per_core() * 1e9;
        sig.core_efficiency
            * (sig.simd_fraction * simd_peak + (1.0 - sig.simd_fraction) * scalar_peak)
    }

    /// Memory-traffic scale factor of one node: fraction of the nominal
    /// traffic that still reaches main memory given the per-node
    /// working-set share `ws_node` (bytes), the LLC capacity `llc`
    /// actually available to the active cores, and the code's cache
    /// sharpness `gamma`: `scale = 1 − (llc/ws)^γ`, with a residual
    /// streaming floor. γ = 1 is the fully associative random-access
    /// limit; streaming LRU access sees almost no reuse until the set
    /// nearly fits (γ ≈ 3).
    pub fn cache_traffic_scale(&self, ws_node: f64, llc: f64, gamma: f64) -> f64 {
        if ws_node <= 0.0 {
            return CACHE_TRAFFIC_FLOOR;
        }
        let r = (llc / ws_node).min(1.0);
        (1.0 - r.powf(gamma)).max(CACHE_TRAFFIC_FLOOR)
    }

    /// Per-step compute times for all ranks.
    ///
    /// `penalties` scales each rank's compute time (≥ 1.0); used for the
    /// lbm data-alignment pathologies. Pass `&[]` for no penalties.
    pub fn compute_times(&self, sig: &WorkloadSignature, penalties: &[f64]) -> ComputeTimes {
        let nranks = self.nranks();
        assert!(
            penalties.is_empty() || penalties.len() == nranks,
            "penalty vector must be empty or match the rank count"
        );
        let node = &self.cluster.node;
        let nodes_used = self.pinning.nodes_used();
        let domains_per_node = node.numa_domains();
        let active = self.pinning.active_per_domain(domains_per_node);

        // Per-node working-set share and cache scale. The LLC capacity
        // available grows with the number of active cores/domains on the
        // node (SNC L3 slices + private L2s).
        let mut node_scale = vec![1.0f64; nodes_used];
        let mut ranks_per_node = vec![0usize; nodes_used];
        for p in &self.pinning.placements {
            ranks_per_node[p.node] += 1;
        }
        for n in 0..nodes_used {
            let ws_node = sig.distributed_working_set() / nodes_used as f64
                + sig.working_set_bytes * sig.replicated_fraction * ranks_per_node[n] as f64;
            let active_domains = active[n].iter().filter(|&&c| c > 0).count();
            let llc = node.effective_llc_active(ranks_per_node[n], active_domains) as f64;
            node_scale[n] = self.cache_traffic_scale(ws_node, llc, sig.cache_exponent);
        }

        // Rank share of its ccNUMA domain's saturating bandwidth.
        let rate = self.core_rate(sig);
        let flops_rank = sig.flops / nranks as f64;
        let mem_rank_nominal = sig.mem_bytes / nranks as f64;

        let mut per_rank = Vec::with_capacity(nranks);
        let mut t_flops_v = Vec::with_capacity(nranks);
        let mut t_mem_v = Vec::with_capacity(nranks);
        let mut utilization = Vec::with_capacity(nranks);
        let mut effective_mem_total = 0.0;

        for p in &self.pinning.placements {
            let n_active = active[p.node][p.domain].max(1);
            let dom_bw = node.domain_memory.saturation.bandwidth(n_active) * 1e9;
            let share = dom_bw / n_active as f64;
            let mem_rank = (mem_rank_nominal + sig.mem_bytes_per_rank) * node_scale[p.node];
            effective_mem_total += mem_rank;

            let t_flops = flops_rank / rate;
            let t_mem = mem_rank / share;
            let mut t = t_flops.max(t_mem) + OVERLAP_PENALTY * t_flops.min(t_mem);
            if !penalties.is_empty() {
                t *= penalties[p.rank].max(1.0);
            }
            per_rank.push(t);
            t_flops_v.push(t_flops);
            t_mem_v.push(t_mem);
            // Only the DRAM-stall time that is not hidden behind in-core
            // work idles the core; cache-resident data movement keeps
            // the pipelines busy.
            let stall = (t_mem - t_flops).max(0.0);
            utilization.push(if t > 0.0 {
                ((t - stall) / t).clamp(0.0, 1.0)
            } else {
                1.0
            });
        }

        // Victim L3: traffic that no longer reaches memory is served by
        // the L3 instead.
        let dropped = sig.mem_bytes - effective_mem_total;
        ComputeTimes {
            per_rank,
            t_flops: t_flops_v,
            t_mem: t_mem_v,
            utilization,
            effective_mem_bytes: effective_mem_total,
            effective_l3_bytes: sig.l3_bytes + dropped.max(0.0),
            effective_l2_bytes: sig.l2_bytes,
        }
    }

    /// DRAM bandwidth utilization per (node, domain) for the power
    /// model: achieved bandwidth over the saturation plateau, given the
    /// step's effective memory traffic and duration.
    pub fn dram_utilization(&self, ct: &ComputeTimes, step_seconds: f64) -> Vec<Vec<f64>> {
        let node = &self.cluster.node;
        let nodes_used = self.pinning.nodes_used();
        let domains = node.numa_domains();
        let mut bytes = vec![vec![0.0f64; domains]; nodes_used];
        let per_rank_mem = ct.effective_mem_bytes / self.nranks() as f64;
        for p in &self.pinning.placements {
            bytes[p.node][p.domain] += per_rank_mem;
        }
        let plateau = node.domain_memory.saturation.plateau * 1e9;
        bytes
            .iter()
            .map(|doms| {
                doms.iter()
                    .map(|&b| {
                        if step_seconds <= 0.0 {
                            0.0
                        } else {
                            (b / step_seconds / plateau).clamp(0.0, 1.0)
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;

    /// A strongly memory-bound signature (tealeaf-like).
    fn mem_bound() -> WorkloadSignature {
        WorkloadSignature {
            flops: 1e11,
            simd_fraction: 0.1,
            core_efficiency: 0.5,
            mem_bytes: 4e11, // 0.25 flops/byte
            mem_bytes_per_rank: 0.0,
            l2_bytes: 5e11,
            l3_bytes: 4.5e11,
            working_set_bytes: 4e10, // 40 GB: far beyond LLC
            cache_exponent: 1.0,
            replicated_fraction: 0.0,
            heat: 0.3,
            steps: 10,
        }
    }

    /// A compute-bound signature (sph-exa-like).
    fn compute_bound() -> WorkloadSignature {
        WorkloadSignature {
            flops: 1e13,
            simd_fraction: 0.7,
            core_efficiency: 0.35,
            mem_bytes: 1e10,
            mem_bytes_per_rank: 0.0,
            l2_bytes: 4e10,
            l3_bytes: 2e10,
            working_set_bytes: 2e10,
            cache_exponent: 1.0,
            replicated_fraction: 0.0,
            heat: 1.0,
            steps: 10,
        }
    }

    #[test]
    fn memory_bound_speedup_saturates_within_domain() {
        let cluster = presets::cluster_a();
        let sig = mem_bound();
        let t1 = NodeModel::new(&cluster, 1)
            .compute_times(&sig, &[])
            .max_seconds();
        let t6 = NodeModel::new(&cluster, 6)
            .compute_times(&sig, &[])
            .max_seconds();
        let t18 = NodeModel::new(&cluster, 18)
            .compute_times(&sig, &[])
            .max_seconds();
        let s6 = t1 / t6;
        let s18 = t1 / t18;
        // Strong early speedup, then saturation: 18 cores barely beat 6.
        assert!(s6 > 3.0, "speedup at 6 cores: {s6}");
        assert!(s18 < s6 * 1.6, "no saturation: s6={s6} s18={s18}");
    }

    #[test]
    fn memory_bound_scales_across_domains() {
        let cluster = presets::cluster_a();
        let sig = mem_bound();
        let t18 = NodeModel::new(&cluster, 18)
            .compute_times(&sig, &[])
            .max_seconds();
        let t72 = NodeModel::new(&cluster, 72)
            .compute_times(&sig, &[])
            .max_seconds();
        // Four domains: ~4× the bandwidth of one (paper §4.1.1).
        let s = t18 / t72;
        assert!((s - 4.0).abs() < 0.4, "domain scaling {s}");
    }

    #[test]
    fn compute_bound_scales_linearly() {
        let cluster = presets::cluster_a();
        let sig = compute_bound();
        let t1 = NodeModel::new(&cluster, 1)
            .compute_times(&sig, &[])
            .max_seconds();
        let t36 = NodeModel::new(&cluster, 36)
            .compute_times(&sig, &[])
            .max_seconds();
        let s = t1 / t36;
        assert!((s - 36.0).abs() < 1.0, "compute-bound speedup {s}");
    }

    #[test]
    fn utilization_low_when_memory_bound() {
        let cluster = presets::cluster_a();
        let ct = NodeModel::new(&cluster, 18).compute_times(&mem_bound(), &[]);
        assert!(ct.mean_utilization() < 0.5);
        let ct = NodeModel::new(&cluster, 18).compute_times(&compute_bound(), &[]);
        assert!(ct.mean_utilization() > 0.99);
    }

    #[test]
    fn cache_fit_reduces_memory_traffic() {
        let cluster = presets::cluster_b();
        let mut sig = mem_bound();
        // Shrink the working set to 2× the effective LLC of a node.
        let node = &cluster.node;
        let llc = node
            .caches
            .effective_llc_capacity(node.cores(), node.sockets) as f64;
        sig.working_set_bytes = 2.0 * llc;
        // All 104 cores active ⇒ the full LLC is in play.
        let ct = NodeModel::new(&cluster, 104).compute_times(&sig, &[]);
        assert!(
            ct.effective_mem_bytes < 0.6 * sig.mem_bytes,
            "cache fit not applied: {} vs {}",
            ct.effective_mem_bytes,
            sig.mem_bytes
        );
        // The dropped traffic reappears as L3 traffic (victim cache).
        assert!(ct.effective_l3_bytes > sig.l3_bytes);
    }

    #[test]
    fn replicated_working_set_defeats_cache_fit() {
        let cluster = presets::cluster_b();
        let node = &cluster.node;
        let llc = node
            .caches
            .effective_llc_capacity(node.cores(), node.sockets) as f64;
        let mut sig = mem_bound();
        sig.working_set_bytes = 2.0 * llc;
        sig.replicated_fraction = 1.0; // soma-style
        let ct = NodeModel::new(&cluster, 104).compute_times(&sig, &[]);
        // 104 replicas of 2×LLC never fit.
        assert!(ct.effective_mem_bytes > 0.9 * sig.mem_bytes);
    }

    #[test]
    fn penalties_slow_down_selected_ranks() {
        let cluster = presets::cluster_a();
        let sig = compute_bound();
        let mut pen = vec![1.0; 8];
        pen[7] = 2.0;
        let model = NodeModel::new(&cluster, 8);
        let ct = model.compute_times(&sig, &pen);
        assert!((ct.per_rank[7] / ct.per_rank[0] - 2.0).abs() < 1e-9);
        assert!((ct.max_seconds() - ct.per_rank[7]).abs() < 1e-15);
    }

    #[test]
    fn dram_utilization_saturates_for_memory_bound() {
        let cluster = presets::cluster_a();
        let model = NodeModel::new(&cluster, 18);
        let ct = model.compute_times(&mem_bound(), &[]);
        let u = model.dram_utilization(&ct, ct.max_seconds());
        // Domain 0 fully saturated, others idle.
        assert!(u[0][0] > 0.9, "domain 0 utilization {}", u[0][0]);
        assert_eq!(u[0][3], 0.0);
    }

    #[test]
    fn cluster_b_faster_on_memory_bound_by_bandwidth_ratio() {
        // Paper §4.1.2: memory-bound codes accelerate ~1.5–1.66× on a
        // full ClusterB node vs. a full ClusterA node.
        let sig = mem_bound();
        let ta = NodeModel::new(&presets::cluster_a(), 72)
            .compute_times(&sig, &[])
            .max_seconds();
        let tb = NodeModel::new(&presets::cluster_b(), 104)
            .compute_times(&sig, &[])
            .max_seconds();
        let ratio = ta / tb;
        assert!(ratio > 1.35 && ratio < 1.8, "acceleration factor {ratio}");
    }

    #[test]
    fn rate_mixes_simd_and_scalar_paths() {
        let cluster = presets::cluster_a();
        let model = NodeModel::new(&cluster, 1);
        let mut sig = compute_bound();
        sig.simd_fraction = 1.0;
        let full = model.core_rate(&sig);
        sig.simd_fraction = 0.0;
        let scalar = model.core_rate(&sig);
        // AVX-512: 8 DP lanes ⇒ 8× between fully vectorized and scalar.
        assert!((full / scalar - 8.0).abs() < 1e-9);
    }
}
