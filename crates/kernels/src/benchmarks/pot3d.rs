//! `pot3d` — potential-field solutions of the solar corona
//! (SPEC id 28, Fortran, ~495000 LOC incl. HDF5, collective:
//! `MPI_Allreduce`).
//!
//! The original computes potential-field solutions by solving the
//! Laplace equation in 3-D spherical coordinates with a preconditioned
//! CG sparse solver (paper Table 2). It is the paper's archetypal
//! strongly saturating memory-bound code (§4.1.4 measures its L3 vs. L2
//! bandwidth to demonstrate the victim-L3 behaviour) and is very well
//! vectorized. Multi-node it lands in scaling case A — mild superlinear
//! speedup from cache effects (§5.1).
//!
//! The analog implements a real distributed Jacobi-preconditioned CG for
//! a 7-point Laplacian on the 3-D `(nr, nt, np)` grid (unit metric —
//! the spherical metric terms change coefficients, not structure, so the
//! resource footprint and communication pattern are unaffected), with
//! 6-face halo exchange and the two CG `MPI_Allreduce`s per iteration.
//! The HDF5 I/O of the original is outside the timed kernel and not
//! reproduced.

use spechpc_simmpi::comm::{Comm, ReduceOp};
use spechpc_simmpi::program::{Op, Program};

use crate::common::benchmark::{BenchConfig, BenchMeta, Benchmark, Kernel};
use crate::common::config::WorkloadClass;
use crate::common::decomp::Grid3d;
use crate::common::model::ComputeTimes;
use crate::common::signature::WorkloadSignature;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pot3dParams {
    pub nr: usize,
    pub nt: usize,
    pub np: usize,
    /// CG iterations (one simulated step = one CG iteration).
    pub iters: u64,
}

pub fn params(class: WorkloadClass) -> Pot3dParams {
    match class {
        WorkloadClass::Test => Pot3dParams {
            nr: 16,
            nt: 18,
            np: 20,
            iters: 40,
        },
        WorkloadClass::Tiny => Pot3dParams {
            nr: 173,
            nt: 361,
            np: 1171,
            iters: 2000,
        },
        WorkloadClass::Small => Pot3dParams {
            nr: 325,
            nt: 450,
            np: 2050,
            iters: 2500,
        },
        WorkloadClass::Medium => Pot3dParams {
            nr: 600,
            nt: 900,
            np: 4100,
            iters: 3000,
        },
        WorkloadClass::Large => Pot3dParams {
            nr: 1100,
            nt: 1800,
            np: 8200,
            iters: 3500,
        },
    }
}

/// The pot3d suite member.
#[derive(Debug, Default, Clone, Copy)]
pub struct Pot3d;

impl Benchmark for Pot3d {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "pot3d",
            spec_id: 28,
            language: "Fortran",
            loc: 495000,
            collective: "Allreduce",
            numerics: "Preconditioned CG for the Laplace equation in 3D spherical coordinates",
            domain: "Solar physics",
            supports_medium_large: true,
        }
    }

    fn config(&self, class: WorkloadClass) -> BenchConfig {
        let p = params(class);
        BenchConfig {
            params: vec![
                ("Number of nr", p.nr.to_string()),
                ("Number of nt", p.nt.to_string()),
                ("Number of np", p.np.to_string()),
            ],
            steps: p.iters,
        }
    }

    fn signature(&self, class: WorkloadClass) -> WorkloadSignature {
        let p = params(class);
        let n = (p.nr * p.nt * p.np) as f64;
        // One PCG iteration: 7-pt matvec, Jacobi preconditioner apply,
        // 2 dots, 3 axpys over ~8 resident arrays ⇒ ~88 B, ~22 flops per
        // point (metric terms included).
        WorkloadSignature {
            flops: n * 22.0,
            simd_fraction: 0.97,
            core_efficiency: 0.5,
            mem_bytes: n * 88.0,
            mem_bytes_per_rank: 0.0,
            l2_bytes: n * 140.0,
            l3_bytes: n * 120.0,
            working_set_bytes: n * 8.0 * 8.0,
            cache_exponent: 1.2,
            replicated_fraction: 0.0,
            heat: 0.4,
            steps: p.iters,
        }
    }

    fn step_programs(&self, class: WorkloadClass, compute: &ComputeTimes) -> Vec<Program> {
        let nranks = compute.per_rank.len();
        let p = params(class);
        let grid = Grid3d::new(p.nr, p.nt, p.np, nranks);
        (0..nranks)
            .map(|r| {
                let mut prog = Program::new();
                let ((x0, x1), (y0, y1), (z0, z1)) = grid.tile(r);
                let (lx, ly, lz) = (x1 - x0, y1 - y0, z1 - z0);
                let nb = grid.neighbors(r);
                // Face sizes: (−x,+x) = ly·lz, (−y,+y) = lx·lz,
                // (−z,+z) = lx·ly.
                let faces = [ly * lz, ly * lz, lx * lz, lx * lz, lx * ly, lx * ly];
                for dir in 0..6 {
                    let to = nb[dir];
                    let from = nb[dir ^ 1];
                    let bytes = faces[dir] * 8;
                    let tag = dir as u32;
                    match (to, from) {
                        (Some(to), Some(from)) => prog.push(Op::sendrecv(to, bytes, from, tag)),
                        (Some(to), None) => prog.push(Op::send(to, tag, bytes)),
                        (None, Some(from)) => prog.push(Op::recv(from, tag)),
                        (None, None) => {}
                    }
                }
                prog.push(Op::compute(compute.per_rank[r]));
                prog.push(Op::allreduce(8));
                prog.push(Op::allreduce(8));
                prog
            })
            .collect()
    }

    fn make_kernel(
        &self,
        class: WorkloadClass,
        rank: usize,
        nranks: usize,
        _seed: u64,
    ) -> Box<dyn Kernel> {
        let p = params(class);
        Box::new(Pot3dKernel::new(p, rank, nranks))
    }
}

/// Real distributed Jacobi-PCG for a 3-D 7-point Laplacian; one
/// [`Kernel::step`] runs one batch of CG iterations on the system
/// `A x = b` with Dirichlet boundaries.
pub struct Pot3dKernel {
    grid: Grid3d,
    rank: usize,
    lx: usize,
    ly: usize,
    lz: usize,
    /// Solution with 1-cell halo: `(lz+2) × (ly+2) × (lx+2)`.
    x: Vec<f64>,
    b: Vec<f64>,
    pub last_residual: f64,
    pub first_residual: f64,
    iters_per_step: usize,
}

impl Pot3dKernel {
    pub fn new(p: Pot3dParams, rank: usize, nranks: usize) -> Self {
        let grid = Grid3d::new(p.nr, p.nt, p.np, nranks);
        let ((x0, x1), (y0, y1), (z0, z1)) = grid.tile(rank);
        let (lx, ly, lz) = (x1 - x0, y1 - y0, z1 - z0);
        let size = (lx + 2) * (ly + 2) * (lz + 2);
        let mut b = vec![0.0; size];
        // Deterministic smooth source term.
        let sx = lx + 2;
        let sxy = sx * (ly + 2);
        for z in 0..lz {
            for y in 0..ly {
                for x in 0..lx {
                    let (gx, gy, gz) = (x0 + x, y0 + y, z0 + z);
                    b[(z + 1) * sxy + (y + 1) * sx + x + 1] = ((gx as f64 * 0.3).sin()
                        + (gy as f64 * 0.2).cos()
                        + (gz as f64 * 0.11).sin())
                        * 0.5;
                }
            }
        }
        Pot3dKernel {
            grid,
            rank,
            lx,
            ly,
            lz,
            x: vec![0.0; size],
            b,
            last_residual: f64::INFINITY,
            first_residual: f64::INFINITY,
            iters_per_step: 25,
        }
    }

    fn strides(&self) -> (usize, usize) {
        let sx = self.lx + 2;
        (sx, sx * (self.ly + 2))
    }

    /// 6-face halo exchange; missing faces keep zero (Dirichlet).
    fn halo(&self, v: &mut [f64], comm: &mut dyn Comm) {
        let (sx, sxy) = self.strides();
        let (lx, ly, lz) = (self.lx, self.ly, self.lz);
        let nb = self.grid.neighbors(self.rank);

        // Helper to gather/scatter one face. dir: 0 −x, 1 +x, 2 −y,
        // 3 +y, 4 −z, 5 +z; `layer` chooses the plane index.
        let gather = |v: &[f64], axis: usize, layer: usize| -> Vec<f64> {
            let mut out = Vec::new();
            match axis {
                0 => {
                    for z in 1..=lz {
                        for y in 1..=ly {
                            out.push(v[z * sxy + y * sx + layer]);
                        }
                    }
                }
                1 => {
                    for z in 1..=lz {
                        for x in 1..=lx {
                            out.push(v[z * sxy + layer * sx + x]);
                        }
                    }
                }
                _ => {
                    for y in 1..=ly {
                        for x in 1..=lx {
                            out.push(v[layer * sxy + y * sx + x]);
                        }
                    }
                }
            }
            out
        };
        let scatter = |v: &mut [f64], axis: usize, layer: usize, data: &[f64]| {
            let mut i = 0;
            match axis {
                0 => {
                    for z in 1..=lz {
                        for y in 1..=ly {
                            v[z * sxy + y * sx + layer] = data[i];
                            i += 1;
                        }
                    }
                }
                1 => {
                    for z in 1..=lz {
                        for x in 1..=lx {
                            v[z * sxy + layer * sx + x] = data[i];
                            i += 1;
                        }
                    }
                }
                _ => {
                    for y in 1..=ly {
                        for x in 1..=lx {
                            v[layer * sxy + y * sx + x] = data[i];
                            i += 1;
                        }
                    }
                }
            }
        };

        // (axis, send-low layer, send-high layer, low halo, high halo)
        let planes = [
            (0usize, 1usize, lx, 0usize, lx + 1),
            (1, 1, ly, 0, ly + 1),
            (2, 1, lz, 0, lz + 1),
        ];
        for (axis, send_lo, send_hi, halo_lo, halo_hi) in planes {
            let lo_nb = nb[2 * axis];
            let hi_nb = nb[2 * axis + 1];
            let tag_up = (2 * axis) as u32; // data moving "up" the axis
            let tag_dn = (2 * axis + 1) as u32;
            // Send up / receive from below.
            if let Some(hi) = hi_nb {
                comm.send(hi, tag_up, &gather(v, axis, send_hi));
            }
            if let Some(lo) = lo_nb {
                comm.send(lo, tag_dn, &gather(v, axis, send_lo));
            }
            let face_len = gather(v, axis, send_lo).len();
            if let Some(lo) = lo_nb {
                let mut buf = vec![0.0; face_len];
                comm.recv(lo, tag_up, &mut buf);
                scatter(v, axis, halo_lo, &buf);
            } else {
                // Dirichlet boundary: the halo face is exactly zero
                // (callers may pass vectors with stale halo entries).
                scatter(v, axis, halo_lo, &vec![0.0; face_len]);
            }
            if let Some(hi) = hi_nb {
                let mut buf = vec![0.0; face_len];
                comm.recv(hi, tag_dn, &mut buf);
                scatter(v, axis, halo_hi, &buf);
            } else {
                scatter(v, axis, halo_hi, &vec![0.0; face_len]);
            }
        }
    }

    /// `A v = 6v − Σ neighbors` (positive-definite 7-point Laplacian
    /// with Dirichlet boundaries).
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        let (sx, sxy) = self.strides();
        for z in 1..=self.lz {
            for y in 1..=self.ly {
                for x in 1..=self.lx {
                    let i = z * sxy + y * sx + x;
                    out[i] = 6.0 * v[i]
                        - v[i - 1]
                        - v[i + 1]
                        - v[i - sx]
                        - v[i + sx]
                        - v[i - sxy]
                        - v[i + sxy];
                }
            }
        }
    }

    fn dot(&self, a: &[f64], b: &[f64], comm: &mut dyn Comm) -> f64 {
        let (sx, sxy) = self.strides();
        let mut s = 0.0;
        for z in 1..=self.lz {
            for y in 1..=self.ly {
                for x in 1..=self.lx {
                    let i = z * sxy + y * sx + x;
                    s += a[i] * b[i];
                }
            }
        }
        comm.allreduce_scalar(ReduceOp::Sum, s)
    }
}

impl Kernel for Pot3dKernel {
    fn step(&mut self, comm: &mut dyn Comm) {
        let size = self.x.len();
        let (sx, sxy) = self.strides();
        let mut r = vec![0.0; size];
        let mut z = vec![0.0; size];
        let mut p = vec![0.0; size];
        let mut ap = vec![0.0; size];

        // r = b − A x; Jacobi preconditioner M⁻¹ = 1/6.
        let mut xh = self.x.clone();
        self.halo(&mut xh, comm);
        self.apply(&xh, &mut ap);
        for i in 0..size {
            r[i] = self.b[i] - ap[i];
        }
        // Zero out halo entries of r so they don't pollute the dots.
        for zz in [0, self.lz + 1] {
            for y in 0..self.ly + 2 {
                for x in 0..self.lx + 2 {
                    r[zz * sxy + y * sx + x] = 0.0;
                }
            }
        }
        for i in 0..size {
            z[i] = r[i] / 6.0;
            p[i] = z[i];
        }
        let mut rz = self.dot(&r, &z, comm);
        self.first_residual = self.dot(&r, &r, comm).sqrt();

        for _ in 0..self.iters_per_step {
            self.halo(&mut p, comm);
            self.apply(&p, &mut ap);
            let pap = self.dot(&p, &ap, comm);
            if pap <= 0.0 {
                break;
            }
            let alpha = rz / pap;
            for i in 0..size {
                self.x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            for i in 0..size {
                z[i] = r[i] / 6.0;
            }
            let rz_new = self.dot(&r, &z, comm);
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..size {
                p[i] = z[i] + beta * p[i];
            }
        }
        self.last_residual = self.dot(&r, &r, comm).sqrt();
    }

    fn validate(&self) -> Result<(), String> {
        if !self.last_residual.is_finite() {
            return Err("residual not finite".into());
        }
        if self.last_residual > self.first_residual * 1.001 {
            return Err(format!(
                "PCG diverged: {} → {}",
                self.first_residual, self.last_residual
            ));
        }
        if self.x.iter().any(|v| !v.is_finite()) {
            return Err("non-finite solution entry".into());
        }
        Ok(())
    }

    fn checksum(&self) -> f64 {
        // Interior sum only: halo entries hold transient axpy values.
        let (sx, sxy) = self.strides();
        let mut s = 0.0;
        for z in 1..=self.lz {
            for y in 1..=self.ly {
                for x in 1..=self.lx {
                    s += self.x[z * sxy + y * sx + x];
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_simmpi::comm::SelfComm;
    use spechpc_simmpi::threadcomm::ThreadWorld;

    #[test]
    fn pcg_converges_single_rank() {
        let mut k = Pot3dKernel::new(params(WorkloadClass::Test), 0, 1);
        let mut comm = SelfComm::new();
        k.step(&mut comm);
        assert!(
            k.last_residual < 0.1 * k.first_residual,
            "PCG stalled: {} → {}",
            k.first_residual,
            k.last_residual
        );
        k.validate().unwrap();
        // More steps keep reducing the residual.
        let r1 = k.last_residual;
        k.step(&mut comm);
        assert!(k.last_residual < r1);
    }

    #[test]
    fn operator_positive_definite_and_symmetric() {
        let k = Pot3dKernel::new(params(WorkloadClass::Test), 0, 1);
        let size = k.x.len();
        let mut v = vec![0.0; size];
        let mut w = vec![0.0; size];
        let (sx, sxy) = k.strides();
        for z in 1..=k.lz {
            for y in 1..=k.ly {
                for x in 1..=k.lx {
                    let i = z * sxy + y * sx + x;
                    v[i] = ((x * 7 + y * 3 + z * 11) % 17) as f64 - 8.0;
                    w[i] = ((x * 13 + y * 5 + z * 2) % 19) as f64 - 9.0;
                }
            }
        }
        let (mut av, mut aw) = (vec![0.0; size], vec![0.0; size]);
        k.apply(&v, &mut av);
        k.apply(&w, &mut aw);
        let d1: f64 = av.iter().zip(&w).map(|(a, b)| a * b).sum();
        let d2: f64 = v.iter().zip(&aw).map(|(a, b)| a * b).sum();
        assert!((d1 - d2).abs() < 1e-9 * d1.abs().max(1.0));
        let vav: f64 = av.iter().zip(&v).map(|(a, b)| a * b).sum();
        assert!(vav > 0.0, "operator must be positive definite");
    }

    #[test]
    fn eight_rank_native_pcg_converges() {
        let p = params(WorkloadClass::Test);
        let residuals = ThreadWorld::run(8, |rank, comm| {
            let mut k = Pot3dKernel::new(p, rank, 8);
            k.step(comm);
            k.validate().unwrap();
            (k.first_residual, k.last_residual)
        });
        // Residuals are global — identical on every rank.
        let (f0, l0) = residuals[0];
        for &(f, l) in &residuals {
            assert!((f - f0).abs() < 1e-9);
            assert!((l - l0).abs() < 1e-9);
        }
        assert!(l0 < 0.1 * f0, "distributed PCG stalled: {f0} → {l0}");
    }

    #[test]
    fn distributed_matches_single_rank_solution() {
        let p = params(WorkloadClass::Test);
        // Global solution sum must agree between 1-rank and 4-rank runs.
        let mut single = Pot3dKernel::new(p, 0, 1);
        let mut comm = SelfComm::new();
        single.step(&mut comm);
        let sum1 = single.checksum();
        let sums = ThreadWorld::run(4, |rank, comm| {
            let mut k = Pot3dKernel::new(p, rank, 4);
            k.step(comm);
            k.checksum()
        });
        let sum4: f64 = sums.iter().sum();
        assert!(
            (sum1 - sum4).abs() < 1e-6 * sum1.abs().max(1.0),
            "decomposition changes the solution: {sum1} vs {sum4}"
        );
    }

    #[test]
    fn signature_is_the_strong_saturator() {
        let sig = Pot3d.signature(WorkloadClass::Tiny);
        sig.validate().unwrap();
        assert!(sig.intensity() < 0.5);
        assert!(sig.simd_fraction > 0.9);
        // Tiny working set ≈ 4.7 GB.
        let ws = sig.working_set_bytes / 1e9;
        assert!(ws > 3.0 && ws < 8.0, "working set {ws} GB");
    }

    #[test]
    fn step_program_has_two_reductions_and_face_exchanges() {
        let ct = ComputeTimes {
            per_rank: vec![0.01; 8],
            t_flops: vec![0.0; 8],
            t_mem: vec![0.01; 8],
            utilization: vec![0.2; 8],
            effective_mem_bytes: 0.0,
            effective_l3_bytes: 0.0,
            effective_l2_bytes: 0.0,
        };
        let progs = Pot3d.step_programs(WorkloadClass::Tiny, &ct);
        for p in &progs {
            assert_eq!(p.collective_count(), 2);
            assert!(p.validate().is_ok());
        }
    }
}
