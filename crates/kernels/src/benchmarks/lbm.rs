//! `lbm` — Lattice-Boltzmann D2Q37 2-D CFD solver analog
//! (SPEC id 05, C, ~9000 LOC, collective: `MPI_Barrier`).
//!
//! The original is a D2Q37 LBM with a strongly memory-bound sparse
//! "propagate" kernel and a very compute-intensive "collide" kernel
//! (~6600 flops per lattice-site update, paper §4.1.6). This analog
//! implements a real D2Q37 BGK lattice-Boltzmann method: the full
//! 37-velocity set, Gaussian-weight equilibrium with a self-consistent
//! sound speed (mass and momentum are conserved *exactly*, which the
//! tests verify), pull-scheme propagation with depth-3 halos, and
//! periodic global boundaries.
//!
//! The paper's headline lbm finding — reproducible performance
//! *fluctuations* over the process count, caused by data-alignment
//! pathologies of the many parallel SoA streams (TLB shortage, SIMD
//! remainder/misalignment, L1-set aliasing) — is modelled in
//! [`Lbm::penalties`]: the per-rank tile geometry determines a
//! deterministic slow-down factor, and the per-iteration `MPI_Barrier`
//! (which the paper notes is avoidable) makes every rank wait for the
//! slowest one, exactly as in the ITAC inset of Fig. 2(h).

use spechpc_simmpi::comm::Comm;
use spechpc_simmpi::program::{Op, Program};

use crate::common::benchmark::{BenchConfig, BenchMeta, Benchmark, Kernel};
use crate::common::config::WorkloadClass;
use crate::common::decomp::Grid2d;
use crate::common::model::ComputeTimes;
use crate::common::signature::WorkloadSignature;

/// Halo depth: the D2Q37 velocity set reaches 3 lattice cells.
const HALO: usize = 3;

/// Flops per lattice-site update of the original collide kernel (§4.1.6).
const FLOPS_PER_SITE: f64 = 6600.0;

/// Memory traffic per site and step: 37 populations read + written with
/// write-allocate (3 × 37 × 8 B).
const BYTES_PER_SITE: f64 = 37.0 * 8.0 * 3.0;

/// The 37 discrete velocities: all integer `(cx, cy)` with
/// `cx² + cy² ∈ {0, 1, 2, 4, 5, 8, 9, 10}`.
pub fn velocities() -> Vec<(i32, i32)> {
    let mut v = Vec::with_capacity(37);
    for cx in -3i32..=3 {
        for cy in -3i32..=3 {
            let n = cx * cx + cy * cy;
            if matches!(n, 0 | 1 | 2 | 4 | 5 | 8 | 9 | 10) {
                v.push((cx, cy));
            }
        }
    }
    debug_assert_eq!(v.len(), 37);
    v
}

/// Gaussian weights `w_i ∝ exp(−|c_i|²/2)`, normalized to 1, plus the
/// self-consistent squared sound speed `cs² = Σ w_i c_ix²` that makes
/// the second-order equilibrium conserve mass and momentum exactly.
pub fn weights_and_cs2(vel: &[(i32, i32)]) -> (Vec<f64>, f64) {
    let raw: Vec<f64> = vel
        .iter()
        .map(|&(cx, cy)| (-0.5 * (cx * cx + cy * cy) as f64).exp())
        .collect();
    let norm: f64 = raw.iter().sum();
    let w: Vec<f64> = raw.iter().map(|x| x / norm).collect();
    let cs2: f64 = w
        .iter()
        .zip(vel)
        .map(|(wi, &(cx, _))| wi * (cx * cx) as f64)
        .sum();
    (w, cs2)
}

/// Per-class lattice parameters (paper Table 1; medium/large
/// extrapolated with the suite's ~8×-per-class footprint growth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbmParams {
    pub nx: usize,
    pub ny: usize,
    pub steps: u64,
    pub seed: u64,
}

pub fn params(class: WorkloadClass) -> LbmParams {
    match class {
        WorkloadClass::Test => LbmParams {
            nx: 48,
            ny: 96,
            steps: 10,
            seed: 13948,
        },
        WorkloadClass::Tiny => LbmParams {
            nx: 4096,
            ny: 16384,
            steps: 600,
            seed: 13948,
        },
        WorkloadClass::Small => LbmParams {
            nx: 12000,
            ny: 48000,
            steps: 500,
            seed: 13948,
        },
        WorkloadClass::Medium => LbmParams {
            nx: 36000,
            ny: 144000,
            steps: 400,
            seed: 13948,
        },
        WorkloadClass::Large => LbmParams {
            nx: 72000,
            ny: 288000,
            steps: 300,
            seed: 13948,
        },
    }
}

/// Columns-equivalent of populations crossing an x-boundary per halo
/// exchange: `Σ_{cx>0} cx` over the velocity set (= 26; same in y by
/// symmetry).
fn crossing_columns() -> usize {
    velocities().iter().map(|&(cx, _)| cx.max(0) as usize).sum()
}

/// The lbm suite member.
#[derive(Debug, Default, Clone, Copy)]
pub struct Lbm;

impl Benchmark for Lbm {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "lbm",
            spec_id: 5,
            language: "C",
            loc: 9000,
            collective: "Barrier",
            numerics: "Lattice-Boltzmann Method D2Q37",
            domain: "2D CFD solver",
            supports_medium_large: true,
        }
    }

    fn config(&self, class: WorkloadClass) -> BenchConfig {
        let p = params(class);
        BenchConfig {
            params: vec![
                (
                    "{X,Y}-dimension of lattice",
                    format!("{{{},{}}}", p.nx, p.ny),
                ),
                ("Number of iterations", p.steps.to_string()),
                ("Seed for random number generator", p.seed.to_string()),
            ],
            steps: p.steps,
        }
    }

    fn signature(&self, class: WorkloadClass) -> WorkloadSignature {
        let p = params(class);
        let sites = (p.nx * p.ny) as f64;
        WorkloadSignature {
            flops: sites * FLOPS_PER_SITE,
            simd_fraction: 0.95,
            core_efficiency: 0.18,
            mem_bytes: sites * BYTES_PER_SITE,
            mem_bytes_per_rank: 0.0,
            l2_bytes: sites * BYTES_PER_SITE * 2.2,
            l3_bytes: sites * BYTES_PER_SITE * 1.5,
            // Two lattices (source + destination of the pull scheme).
            working_set_bytes: sites * 37.0 * 8.0 * 2.0,
            cache_exponent: 3.0,
            replicated_fraction: 0.0,
            heat: 0.65,
            steps: p.steps,
        }
    }

    /// Data-alignment pathology model (§4.1.6). Per-rank slow-down from
    /// the tile geometry:
    ///
    /// * SIMD remainder / misaligned rows when the tile width is not a
    ///   multiple of the 8-lane AVX-512 vector,
    /// * dTLB shortage when the 37 parallel SoA streams touch too many
    ///   distinct 4-KiB pages per row sweep,
    /// * L1-set aliasing when the row stride is a large multiple of the
    ///   4-KiB critical stride (powers of two in the lattice dimensions
    ///   are "particularly susceptible", as the paper notes).
    fn penalties(&self, class: WorkloadClass, nranks: usize) -> Vec<f64> {
        let p = params(class);
        let grid = Grid2d::new(p.nx, p.ny, nranks);
        let uneven = !p.ny.is_multiple_of(grid.py) || !p.nx.is_multiple_of(grid.px);
        (0..nranks)
            .map(|r| {
                let (lx, _ly) = grid.tile_size(r);
                let stride = lx * 8;
                let mut pen = 1.0;
                let mut pathological = false;
                if lx % 8 != 0 {
                    pen += 0.10;
                    pathological = true;
                }
                let pages_per_row_sweep = 37 * stride.div_ceil(4096);
                if pages_per_row_sweep > 128 {
                    pen += 0.12;
                    pathological = true;
                }
                if stride >= 16384 && stride % 4096 == 0 {
                    pen += 0.22;
                    pathological = true;
                }
                // With a pathological stride *and* an uneven
                // decomposition, tiles whose start offset lands badly
                // relative to the page pattern are hit much harder —
                // the "certain processes being slower if the local
                // domain size is unfortunate" effect behind the slow
                // rank of the Fig. 2(h) inset.
                if pathological && uneven {
                    let (_, _, y0, _) = grid.tile(r);
                    if y0 % 4096 >= 3584 {
                        pen += 0.25;
                    }
                }
                pen
            })
            .collect()
    }

    fn step_programs(&self, class: WorkloadClass, compute: &ComputeTimes) -> Vec<Program> {
        let nranks = compute.per_rank.len();
        let p = params(class);
        let grid = Grid2d::new(p.nx, p.ny, nranks);
        let cross = crossing_columns();
        (0..nranks)
            .map(|r| {
                let mut prog = Program::new();
                prog.push(Op::compute(compute.per_rank[r]));
                let (lx, ly) = grid.tile_size(r);
                let [w, e, s, n] = grid.neighbors_periodic(r);
                let bytes_x = cross * ly * 8;
                let bytes_y = cross * (lx + 2 * HALO) * 8;
                let mut req = 0;
                let mut pairs = Vec::new();
                // Non-blocking halo exchange, x then y (the y strips
                // include the x halos, handling corners).
                for (peer_send, peer_recv, bytes, tag) in [
                    (e, w, bytes_x, 0u32),
                    (w, e, bytes_x, 1),
                    (n, s, bytes_y, 2),
                    (s, n, bytes_y, 3),
                ] {
                    // Self-sends in a 1-wide periodic grid are local
                    // copies, not messages.
                    if peer_send != r {
                        prog.push(Op::irecv(peer_recv, tag, req));
                        pairs.push(req);
                        req += 1;
                        prog.push(Op::isend(peer_send, tag, bytes, req));
                        pairs.push(req);
                        req += 1;
                    }
                }
                for q in pairs {
                    prog.push(Op::wait(q));
                }
                // The per-iteration global barrier the paper calls out
                // as avoidable.
                prog.push(Op::Barrier);
                prog
            })
            .collect()
    }

    fn make_kernel(
        &self,
        class: WorkloadClass,
        rank: usize,
        nranks: usize,
        seed: u64,
    ) -> Box<dyn Kernel> {
        let p = params(class);
        Box::new(LbmKernel::new(p.nx, p.ny, rank, nranks, seed))
    }
}

/// Real executable D2Q37 BGK kernel on a rank-local tile.
pub struct LbmKernel {
    grid: Grid2d,
    rank: usize,
    /// Local tile extents (without halo).
    lx: usize,
    ly: usize,
    /// Populations, SoA: `f[q][(ly + 2H) × (lx + 2H)]`.
    f: Vec<Vec<f64>>,
    fnew: Vec<Vec<f64>>,
    vel: Vec<(i32, i32)>,
    w: Vec<f64>,
    cs2: f64,
    /// BGK relaxation parameter.
    omega: f64,
    steps_done: u64,
}

impl LbmKernel {
    pub fn new(nx: usize, ny: usize, rank: usize, nranks: usize, seed: u64) -> Self {
        let grid = Grid2d::new(nx, ny, nranks);
        assert!(rank < nranks);
        let (lx, ly) = grid.tile_size(rank);
        assert!(
            lx >= HALO && ly >= HALO,
            "tile {lx}×{ly} smaller than the halo depth"
        );
        let vel = velocities();
        let (w, cs2) = weights_and_cs2(&vel);
        let stride = lx + 2 * HALO;
        let size = stride * (ly + 2 * HALO);
        // Initial condition: ρ = 1 + small deterministic perturbation,
        // u = 0 (populations at equilibrium = weights × ρ).
        let (x0, _, y0, _) = grid.tile(rank);
        let mut f = vec![vec![0.0; size]; 37];
        for y in 0..ly {
            for x in 0..lx {
                let gx = (x0 + x) as f64;
                let gy = (y0 + y) as f64;
                let h = seed as f64 * 1e-4;
                let rho = 1.0 + 0.05 * ((gx * 0.37 + h).sin() * (gy * 0.23 + h).cos());
                let idx = (y + HALO) * stride + x + HALO;
                for q in 0..37 {
                    f[q][idx] = w[q] * rho;
                }
            }
        }
        let fnew = f.clone();
        LbmKernel {
            grid,
            rank,
            lx,
            ly,
            f,
            fnew,
            vel,
            w,
            cs2,
            omega: 1.2,
            steps_done: 0,
        }
    }

    fn stride(&self) -> usize {
        self.lx + 2 * HALO
    }

    /// Exchange halos: x-direction strips first, then y-direction strips
    /// including the freshly filled x halos (corner-complete).
    fn exchange_halos(&mut self, comm: &mut dyn Comm) {
        let stride = self.stride();
        let (lx, ly) = (self.lx, self.ly);
        let [wn, en, sn, nn] = self.grid.neighbors_periodic(self.rank);

        // --- X direction: columns [H, H+HALO) to west, [lx, lx+H) east.
        let pack_x = |f: &[Vec<f64>], x_start: usize| {
            let mut buf = Vec::with_capacity(37 * HALO * ly);
            for q in 0..37 {
                for y in 0..ly {
                    for dx in 0..HALO {
                        buf.push(f[q][(y + HALO) * stride + x_start + dx]);
                    }
                }
            }
            buf
        };
        let unpack_x = |f: &mut [Vec<f64>], buf: &[f64], x_start: usize| {
            let mut i = 0;
            for q in 0..37 {
                for y in 0..ly {
                    for dx in 0..HALO {
                        f[q][(y + HALO) * stride + x_start + dx] = buf[i];
                        i += 1;
                    }
                }
            }
        };
        let east_out = pack_x(&self.f, lx); // rightmost core columns
        let west_out = pack_x(&self.f, HALO); // leftmost core columns
        let mut west_in = vec![0.0; east_out.len()];
        let mut east_in = vec![0.0; west_out.len()];
        comm.sendrecv(en, &east_out, wn, &mut west_in, 10);
        comm.sendrecv(wn, &west_out, en, &mut east_in, 11);
        unpack_x(&mut self.f, &west_in, 0);
        unpack_x(&mut self.f, &east_in, lx + HALO);

        // --- Y direction: full-width rows including x halos.
        let row_w = stride;
        let pack_y = |f: &[Vec<f64>], y_start: usize| {
            let mut buf = Vec::with_capacity(37 * HALO * row_w);
            for q in 0..37 {
                for dy in 0..HALO {
                    let off = (y_start + dy) * stride;
                    buf.extend_from_slice(&f[q][off..off + row_w]);
                }
            }
            buf
        };
        let unpack_y = |f: &mut [Vec<f64>], buf: &[f64], y_start: usize| {
            let mut i = 0;
            for q in 0..37 {
                for dy in 0..HALO {
                    let off = (y_start + dy) * stride;
                    f[q][off..off + row_w].copy_from_slice(&buf[i..i + row_w]);
                    i += row_w;
                }
            }
        };
        let north_out = pack_y(&self.f, ly); // topmost core rows
        let south_out = pack_y(&self.f, HALO); // bottom core rows
        let mut south_in = vec![0.0; north_out.len()];
        let mut north_in = vec![0.0; south_out.len()];
        comm.sendrecv(nn, &north_out, sn, &mut south_in, 12);
        comm.sendrecv(sn, &south_out, nn, &mut north_in, 13);
        unpack_y(&mut self.f, &south_in, 0);
        unpack_y(&mut self.f, &north_in, ly + HALO);
    }

    /// Overwrite the state with a perfectly uniform equilibrium of
    /// density `rho` (used by fixed-point tests).
    pub fn set_uniform(&mut self, rho: f64, weights: &[f64]) {
        assert_eq!(weights.len(), 37);
        let stride = self.stride();
        for (q, w) in weights.iter().enumerate() {
            for y in 0..self.ly + 2 * HALO {
                for x in 0..self.lx + 2 * HALO {
                    self.f[q][y * stride + x] = w * rho;
                }
            }
        }
    }

    /// Max − min density over the core cells.
    pub fn density_spread(&self) -> f64 {
        let stride = self.stride();
        let mut mn = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        for y in 0..self.ly {
            for x in 0..self.lx {
                let rho: f64 = (0..37)
                    .map(|q| self.f[q][(y + HALO) * stride + x + HALO])
                    .sum();
                mn = mn.min(rho);
                mx = mx.max(rho);
            }
        }
        mx - mn
    }

    /// Total mass on the local tile (core cells only).
    pub fn local_mass(&self) -> f64 {
        let stride = self.stride();
        let mut m = 0.0;
        for q in 0..37 {
            for y in 0..self.ly {
                for x in 0..self.lx {
                    m += self.f[q][(y + HALO) * stride + x + HALO];
                }
            }
        }
        m
    }

    /// Total x/y momentum on the local tile.
    pub fn local_momentum(&self) -> (f64, f64) {
        let stride = self.stride();
        let (mut px, mut py) = (0.0, 0.0);
        for (q, &(cx, cy)) in self.vel.iter().enumerate() {
            let mut s = 0.0;
            for y in 0..self.ly {
                for x in 0..self.lx {
                    s += self.f[q][(y + HALO) * stride + x + HALO];
                }
            }
            px += s * cx as f64;
            py += s * cy as f64;
        }
        (px, py)
    }
}

impl Kernel for LbmKernel {
    fn step(&mut self, comm: &mut dyn Comm) {
        self.exchange_halos(comm);
        let stride = self.stride();
        // Propagate (pull) + collide fused per cell.
        for y in 0..self.ly {
            for x in 0..self.lx {
                let idx = (y + HALO) * stride + (x + HALO);
                // Pull populations from upwind cells.
                let mut rho = 0.0;
                let mut ux = 0.0;
                let mut uy = 0.0;
                for q in 0..37 {
                    let (cx, cy) = self.vel[q];
                    let src = ((y + HALO) as i64 - cy as i64) as usize * stride
                        + ((x + HALO) as i64 - cx as i64) as usize;
                    let fq = self.f[q][src];
                    self.fnew[q][idx] = fq;
                    rho += fq;
                    ux += fq * cx as f64;
                    uy += fq * cy as f64;
                }
                ux /= rho;
                uy /= rho;
                // BGK collision with second-order equilibrium.
                let cs2 = self.cs2;
                let usq = ux * ux + uy * uy;
                for q in 0..37 {
                    let (cx, cy) = self.vel[q];
                    let cu = (cx as f64 * ux + cy as f64 * uy) / cs2;
                    let feq = self.w[q] * rho * (1.0 + cu + 0.5 * cu * cu - 0.5 * usq / cs2);
                    self.fnew[q][idx] += self.omega * (feq - self.fnew[q][idx]);
                }
            }
        }
        std::mem::swap(&mut self.f, &mut self.fnew);
        self.steps_done += 1;
        // End-of-iteration barrier, as in the original code.
        comm.barrier();
    }

    fn validate(&self) -> Result<(), String> {
        let stride = self.stride();
        for (q, fq) in self.f.iter().enumerate() {
            for y in 0..self.ly {
                for x in 0..self.lx {
                    let v = fq[(y + HALO) * stride + x + HALO];
                    if !v.is_finite() {
                        return Err(format!("non-finite population q={q} at ({x},{y})"));
                    }
                }
            }
        }
        let m = self.local_mass();
        if m <= 0.0 {
            return Err(format!("non-positive local mass {m}"));
        }
        Ok(())
    }

    fn checksum(&self) -> f64 {
        self.local_mass()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_simmpi::comm::SelfComm;

    #[test]
    fn velocity_set_has_37_symmetric_members() {
        let v = velocities();
        assert_eq!(v.len(), 37);
        for &(cx, cy) in &v {
            assert!(v.contains(&(-cx, -cy)), "set must be symmetric");
            assert!(v.contains(&(cy, cx)), "set must be xy-symmetric");
        }
        // Net drift of the set is zero.
        let sx: i32 = v.iter().map(|&(cx, _)| cx).sum();
        assert_eq!(sx, 0);
    }

    #[test]
    fn weights_normalized_and_cs2_isotropic() {
        let v = velocities();
        let (w, cs2) = weights_and_cs2(&v);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-14);
        assert!(cs2 > 0.0);
        // Isotropy: Σ w cx² = Σ w cy², Σ w cx·cy = 0.
        let sxx: f64 = w
            .iter()
            .zip(&v)
            .map(|(w, &(x, _))| w * (x * x) as f64)
            .sum();
        let syy: f64 = w
            .iter()
            .zip(&v)
            .map(|(w, &(_, y))| w * (y * y) as f64)
            .sum();
        let sxy: f64 = w
            .iter()
            .zip(&v)
            .map(|(w, &(x, y))| w * (x * y) as f64)
            .sum();
        assert!((sxx - syy).abs() < 1e-14);
        assert!(sxy.abs() < 1e-15);
        assert!((cs2 - sxx).abs() < 1e-14);
    }

    #[test]
    fn single_rank_mass_and_momentum_conserved() {
        let mut k = LbmKernel::new(24, 24, 0, 1, 42);
        let m0 = k.local_mass();
        let (px0, py0) = k.local_momentum();
        let mut comm = SelfComm::new();
        for _ in 0..5 {
            k.step(&mut comm);
        }
        let m1 = k.local_mass();
        let (px1, py1) = k.local_momentum();
        assert!((m1 - m0).abs() / m0 < 1e-12, "mass drift {m0} → {m1}");
        assert!((px1 - px0).abs() < 1e-9, "x-momentum drift {px0} → {px1}");
        assert!((py1 - py0).abs() < 1e-9, "y-momentum drift {py0} → {py1}");
        k.validate().unwrap();
    }

    #[test]
    fn density_perturbation_relaxes() {
        // The BGK collision damps the initial perturbation: the density
        // spread must shrink over time.
        let mut k = LbmKernel::new(16, 16, 0, 1, 42);
        let spread = |k: &LbmKernel| {
            let stride = k.stride();
            let mut mn = f64::INFINITY;
            let mut mx = f64::NEG_INFINITY;
            for y in 0..k.ly {
                for x in 0..k.lx {
                    let rho: f64 = (0..37)
                        .map(|q| k.f[q][(y + HALO) * stride + x + HALO])
                        .sum();
                    mn = mn.min(rho);
                    mx = mx.max(rho);
                }
            }
            mx - mn
        };
        let s0 = spread(&k);
        let mut comm = SelfComm::new();
        for _ in 0..30 {
            k.step(&mut comm);
        }
        let s1 = spread(&k);
        assert!(s1 < s0, "perturbation must decay: {s0} → {s1}");
    }

    #[test]
    fn penalties_flag_pathological_counts() {
        let lbm = Lbm;
        let max_pen = |n: usize| -> f64 {
            lbm.penalties(WorkloadClass::Tiny, n)
                .into_iter()
                .fold(1.0, f64::max)
        };
        // Paper §4.1.6: 22, 23, 31, 45 draw excess traffic / run slow;
        // 44 and 72 are fine.
        assert!(max_pen(22) > 1.05, "22 should be penalized");
        assert!(max_pen(23) > 1.05, "23 should be penalized");
        assert!(max_pen(45) > 1.05, "45 should be penalized");
        assert!(max_pen(71) > 1.05, "71 should be penalized");
        assert!((max_pen(44) - 1.0).abs() < 1e-12, "44 must be clean");
        assert!((max_pen(72) - 1.0).abs() < 1e-12, "72 must be clean");
    }

    #[test]
    fn step_programs_have_barrier_and_halos() {
        let lbm = Lbm;
        let ct = ComputeTimes {
            per_rank: vec![0.01; 8],
            t_flops: vec![0.01; 8],
            t_mem: vec![0.0; 8],
            utilization: vec![1.0; 8],
            effective_mem_bytes: 0.0,
            effective_l3_bytes: 0.0,
            effective_l2_bytes: 0.0,
        };
        let progs = lbm.step_programs(WorkloadClass::Tiny, &ct);
        assert_eq!(progs.len(), 8);
        for p in &progs {
            assert!(p.ops.iter().any(|o| matches!(o, Op::Barrier)));
            assert!(p.validate().is_ok());
            assert!(p.bytes_sent() > 0, "halo traffic expected");
        }
    }

    #[test]
    fn config_matches_table_1() {
        let cfg = Lbm.config(WorkloadClass::Tiny);
        assert_eq!(
            cfg.param("{X,Y}-dimension of lattice"),
            Some("{4096,16384}")
        );
        assert_eq!(cfg.steps, 600);
        let cfg = Lbm.config(WorkloadClass::Small);
        assert_eq!(
            cfg.param("{X,Y}-dimension of lattice"),
            Some("{12000,48000}")
        );
        assert_eq!(cfg.steps, 500);
    }

    #[test]
    fn signature_is_compute_dominated_but_with_bandwidth_demand() {
        let sig = Lbm.signature(WorkloadClass::Tiny);
        sig.validate().unwrap();
        // ~7.4 flops/byte: well above the memory-bound regime of the
        // strongly saturating codes, below pure compute codes.
        let i = sig.intensity();
        assert!(i > 5.0 && i < 12.0, "intensity {i}");
        // Tiny working set ≈ 40 GB (fits the 64 GB class budget).
        let ws_gb = sig.working_set_bytes / 1e9;
        assert!(ws_gb > 30.0 && ws_gb < 64.0, "working set {ws_gb} GB");
    }
}
