//! `weather` — finite-volume atmospheric flow (miniWeather-style)
//! (SPEC id 35, Fortran, ~1100 LOC, no collective).
//!
//! A traditional finite-volume control-flow code for atmospheric
//! dynamics (paper Table 2), the smallest code of the suite. The study's
//! weather findings: it mixes memory-bound and non-memory-bound kernels
//! (§4.1.4), is poorly vectorized ("it might become fully memory bound
//! if it could be efficiently vectorized", §4.1.3), shows the largest
//! ClusterB/ClusterA acceleration of the suite (2.03, §4.1.2), and is
//! *the* superlinear-scaling case: its working set drops into the
//! aggregate caches under strong scaling — earlier on ClusterB with its
//! 1.45×/1.6× larger L3/L2 per core — which makes it scaling case A on
//! ClusterB and case B (cache gain balancing communication) on ClusterA
//! (§5.1.1).
//!
//! The analog implements a real 2-D (x, z) finite-volume transport step
//! with dimensional splitting: four coupled state fields (the
//! dry-dynamics state vector), upwind fluxes in x with a prescribed
//! shear wind, buoyancy-driven vertical fluxes, periodic x boundaries
//! and rigid (zero-flux) z boundaries, 1-D domain decomposition along x
//! with non-blocking halo exchange — and *no* collectives, matching
//! Table 1. Tracer mass is conserved exactly by the flux form.

use spechpc_simmpi::comm::Comm;
use spechpc_simmpi::program::{Op, Program};

use crate::common::benchmark::{BenchConfig, BenchMeta, Benchmark, Kernel};
use crate::common::config::WorkloadClass;
use crate::common::decomp::block_range;
use crate::common::model::ComputeTimes;
use crate::common::signature::WorkloadSignature;

/// State fields: density perturbation, u-momentum, w-momentum,
/// potential-temperature perturbation.
const NVARS: usize = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeatherParams {
    pub nx: usize,
    pub nz: usize,
    pub steps: u64,
    /// Physics model number (Table 1; 6 = Injection).
    pub model: u32,
}

pub fn params(class: WorkloadClass) -> WeatherParams {
    match class {
        WorkloadClass::Test => WeatherParams {
            nx: 64,
            nz: 32,
            steps: 10,
            model: 6,
        },
        WorkloadClass::Tiny => WeatherParams {
            nx: 24000,
            nz: 1250,
            steps: 600,
            model: 6,
        },
        WorkloadClass::Small => WeatherParams {
            nx: 192000,
            nz: 1250,
            steps: 600,
            model: 6,
        },
        WorkloadClass::Medium => WeatherParams {
            nx: 768000,
            nz: 2500,
            steps: 600,
            model: 6,
        },
        WorkloadClass::Large => WeatherParams {
            nx: 1536000,
            nz: 5000,
            steps: 600,
            model: 6,
        },
    }
}

/// The weather suite member.
#[derive(Debug, Default, Clone, Copy)]
pub struct Weather;

impl Benchmark for Weather {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "weather",
            spec_id: 35,
            language: "Fortran",
            loc: 1100,
            collective: "—",
            numerics: "Traditional finite-volume control flow (dry atmospheric dynamics)",
            domain: "Atmospheric weather and climate",
            supports_medium_large: true,
        }
    }

    fn config(&self, class: WorkloadClass) -> BenchConfig {
        let p = params(class);
        BenchConfig {
            params: vec![
                ("Global X-dimension size", p.nx.to_string()),
                ("Global Z-dimension size", p.nz.to_string()),
                ("Number of time-steps", p.steps.to_string()),
                ("Output over N number of time-steps", "100".into()),
                ("Model number to use", p.model.to_string()),
            ],
            steps: p.steps,
        }
    }

    fn signature(&self, class: WorkloadClass) -> WorkloadSignature {
        let p = params(class);
        let n = (p.nx * p.nz) as f64;
        // Mixed kernels: the flux computations are memory-intensive,
        // the semi-discrete update and physics are flop-heavy but
        // poorly vectorized.
        WorkloadSignature {
            flops: n * 250.0,
            simd_fraction: 0.35,
            core_efficiency: 0.30,
            mem_bytes: n * 250.0,
            mem_bytes_per_rank: 0.0,
            l2_bytes: n * 340.0,
            l3_bytes: n * 290.0,
            // The *hot* working set is little more than the 4-field
            // state vector (~20 B/cell after the splitting reuses the
            // temporaries; tiny: ≈0.6 GB): small enough that the
            // aggregate outer-level caches bite — the driver of the
            // superlinear scaling on ClusterB (§4.1.1, §5.1 case A) and
            // of the suite-topping 2.03× acceleration factor (§4.1.2).
            working_set_bytes: n * 20.0,
            cache_exponent: 3.0,
            replicated_fraction: 0.0,
            heat: 0.5,
            steps: p.steps,
        }
    }

    fn step_programs(&self, class: WorkloadClass, compute: &ComputeTimes) -> Vec<Program> {
        let nranks = compute.per_rank.len();
        let p = params(class);
        // Halo: 2 cells × nz × NVARS per side (3rd-order stencils need
        // 2-deep halos in the original).
        let halo_bytes = 2 * p.nz * NVARS * 8;
        (0..nranks)
            .map(|r| {
                let mut prog = Program::new();
                if nranks > 1 {
                    let east = (r + 1) % nranks;
                    let west = (r + nranks - 1) % nranks;
                    prog.push(Op::irecv(west, 0, 0));
                    prog.push(Op::irecv(east, 1, 1));
                    prog.push(Op::isend(east, 0, halo_bytes, 2));
                    prog.push(Op::isend(west, 1, halo_bytes, 3));
                    for q in 0..4 {
                        prog.push(Op::wait(q));
                    }
                }
                // Dimensional splitting: x pass then z pass.
                prog.push(Op::compute(compute.per_rank[r] * 0.5));
                prog.push(Op::compute(compute.per_rank[r] * 0.5));
                prog
            })
            .collect()
    }

    fn make_kernel(
        &self,
        class: WorkloadClass,
        rank: usize,
        nranks: usize,
        _seed: u64,
    ) -> Box<dyn Kernel> {
        let p = params(class);
        Box::new(WeatherKernel::new(p, rank, nranks))
    }
}

/// Real 2-D FV transport kernel, 1-D decomposition in x.
///
/// The prescribed wind field is built from a discrete stream function
/// (a sheared base flow plus a convective roll), so the face velocities
/// are *exactly* discretely divergence-free: constant states are
/// preserved to round-off and the first-order upwind transport is
/// monotone — both tested invariants.
pub struct WeatherKernel {
    rank: usize,
    nranks: usize,
    /// Local x-extent (without halo); z is never split.
    lx: usize,
    nz: usize,
    /// Fields with a 1-cell x halo: `q[v][(lx+2) × nz]`, x-major
    /// (column (x) contiguous in z for easy halo slicing).
    q: Vec<Vec<f64>>,
    qn: Vec<Vec<f64>>,
    /// Face-normal velocity through the x-faces: `(lx+1) × nz`
    /// (face i sits between cells i−1 and i of the core).
    u_face: Vec<f64>,
    /// Face-normal velocity through the z-faces: `lx × (nz+1)`;
    /// exactly zero at the rigid walls.
    w_face: Vec<f64>,
    dt: f64,
    pub steps_done: u64,
}

impl WeatherKernel {
    pub fn new(p: WeatherParams, rank: usize, nranks: usize) -> Self {
        let (x0, x1) = block_range(p.nx, nranks, rank);
        let lx = x1 - x0;
        assert!(lx >= 1, "x-slab too thin");
        let size = (lx + 2) * p.nz;
        let mut q = vec![vec![0.0; size]; NVARS];
        // Injection model (Table 1 model 6): a warm bubble near the
        // bottom boundary, zero mean state perturbation elsewhere.
        for x in 0..lx {
            for z in 0..p.nz {
                let gx = (x0 + x) as f64 / p.nx as f64;
                let gz = z as f64 / p.nz as f64;
                let dx = gx - 0.25;
                let dz = gz - 0.2;
                let bubble = (-((dx * dx) / 0.005 + (dz * dz) / 0.01)).exp();
                let i = (x + 1) * p.nz + z;
                q[0][i] = 1.0; // density
                q[1][i] = 0.0;
                q[2][i] = 0.0;
                q[3][i] = 300.0 + 10.0 * bubble; // θ
            }
        }
        let qn = q.clone();
        // Discrete stream function at cell corners: Ψ(gx, gz) =
        // base-shear + convective roll; face velocities are its
        // differences, hence discretely divergence-free.
        let psi = |gx: usize, gz: usize| -> f64 {
            let fx = gx as f64 / p.nx as f64 * std::f64::consts::TAU;
            let fz = gz as f64 / p.nz as f64;
            // ∂Ψ/∂z = 0.5 + 0.5·z/nz  (the sheared eastward base wind)
            let base = 0.5 * gz as f64 + 0.25 * (gz as f64) * fz;
            let roll = 0.15 * p.nz as f64 * fx.sin() * (std::f64::consts::PI * fz).sin();
            base + roll
        };
        let mut u_face = vec![0.0; (lx + 1) * p.nz];
        for xf in 0..=lx {
            let gx = (x0 + xf) % p.nx; // face between cells gx−1 and gx
            for z in 0..p.nz {
                u_face[xf * p.nz + z] = psi(gx, z + 1) - psi(gx, z);
            }
        }
        let mut w_face = vec![0.0; lx * (p.nz + 1)];
        for x in 0..lx {
            let gx = x0 + x;
            for zf in 0..=p.nz {
                // Zero at zf = 0 and zf = nz: the roll's sin(π·fz)
                // vanishes and the base is x-independent.
                w_face[x * (p.nz + 1) + zf] = -(psi(gx + 1, zf) - psi(gx, zf));
            }
        }
        WeatherKernel {
            rank,
            nranks,
            lx,
            nz: p.nz,
            q,
            qn,
            u_face,
            w_face,
            dt: 0.2,
            steps_done: 0,
        }
    }

    /// Exchange the one-column x halos (columns are contiguous).
    fn halo(&mut self, comm: &mut dyn Comm) {
        let nz = self.nz;
        let lx = self.lx;
        for v in 0..NVARS {
            let base = (v * 4) as u32;
            if self.nranks > 1 {
                let east = (self.rank + 1) % self.nranks;
                let west = (self.rank + self.nranks - 1) % self.nranks;
                let east_col = self.q[v][lx * nz..(lx + 1) * nz].to_vec();
                let west_col = self.q[v][nz..2 * nz].to_vec();
                comm.send(east, base, &east_col);
                comm.send(west, base + 1, &west_col);
                let mut from_west = vec![0.0; nz];
                let mut from_east = vec![0.0; nz];
                comm.recv(west, base, &mut from_west);
                comm.recv(east, base + 1, &mut from_east);
                self.q[v][0..nz].copy_from_slice(&from_west);
                self.q[v][(lx + 1) * nz..(lx + 2) * nz].copy_from_slice(&from_east);
            } else {
                // Periodic wrap locally.
                let east_col = self.q[v][lx * nz..(lx + 1) * nz].to_vec();
                let west_col = self.q[v][nz..2 * nz].to_vec();
                self.q[v][0..nz].copy_from_slice(&east_col);
                self.q[v][(lx + 1) * nz..(lx + 2) * nz].copy_from_slice(&west_col);
            }
        }
    }

    /// Overwrite field `v` (including halos) with a constant.
    pub fn set_constant(&mut self, v: usize, value: f64) {
        self.q[v].iter_mut().for_each(|x| *x = value);
    }

    /// (min, max) of field `v` over the core cells.
    pub fn field_range(&self, v: usize) -> (f64, f64) {
        let nz = self.nz;
        let mut mn = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        for x in 1..=self.lx {
            for z in 0..nz {
                let val = self.q[v][x * nz + z];
                mn = mn.min(val);
                mx = mx.max(val);
            }
        }
        (mn, mx)
    }

    /// Total content of field `v` on the local slab.
    pub fn local_total(&self, v: usize) -> f64 {
        let nz = self.nz;
        let mut s = 0.0;
        for x in 1..=self.lx {
            for z in 0..nz {
                s += self.q[v][x * nz + z];
            }
        }
        s
    }
}

impl Kernel for WeatherKernel {
    fn step(&mut self, comm: &mut dyn Comm) {
        self.halo(comm);
        let nz = self.nz;
        let lx = self.lx;
        let dt = self.dt;

        // Single unsplit conservative upwind update on the discretely
        // divergence-free face velocities: constants are preserved
        // exactly and the scheme is monotone under the CFL bound.
        for v in 0..NVARS {
            for x in 1..=lx {
                for z in 0..nz {
                    let i = x * nz + z;
                    // x faces: west face xf = x−1, east face xf = x
                    // (u_face is indexed by core-face number 0..=lx).
                    let upwind_x = |xf: usize| -> f64 {
                        let u = self.u_face[xf * nz + z];
                        if u >= 0.0 {
                            u * self.q[v][xf * nz + z] // cell west of face
                        } else {
                            u * self.q[v][(xf + 1) * nz + z]
                        }
                    };
                    let upwind_z = |zf: usize| -> f64 {
                        let w = self.w_face[(x - 1) * (nz + 1) + zf];
                        if zf == 0 || zf == nz {
                            return 0.0; // rigid wall (w is 0 there too)
                        }
                        if w >= 0.0 {
                            w * self.q[v][x * nz + zf - 1]
                        } else {
                            w * self.q[v][x * nz + zf]
                        }
                    };
                    let div = (upwind_x(x) - upwind_x(x - 1)) + (upwind_z(z + 1) - upwind_z(z));
                    self.qn[v][i] = self.q[v][i] - dt * div;
                }
            }
        }
        for v in 0..NVARS {
            std::mem::swap(&mut self.q[v], &mut self.qn[v]);
        }
        self.steps_done += 1;
    }

    fn validate(&self) -> Result<(), String> {
        for (v, field) in self.q.iter().enumerate() {
            for x in 1..=self.lx {
                for z in 0..self.nz {
                    let val = field[x * self.nz + z];
                    if !val.is_finite() {
                        return Err(format!("non-finite field {v} at ({x},{z})"));
                    }
                }
            }
        }
        // Density must stay positive.
        for x in 1..=self.lx {
            for z in 0..self.nz {
                if self.q[0][x * self.nz + z] <= 0.0 {
                    return Err("non-positive density".into());
                }
            }
        }
        Ok(())
    }

    fn checksum(&self) -> f64 {
        (0..NVARS).map(|v| self.local_total(v)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_simmpi::comm::SelfComm;
    use spechpc_simmpi::threadcomm::ThreadWorld;

    #[test]
    fn mass_conserved_single_rank() {
        let mut k = WeatherKernel::new(params(WorkloadClass::Test), 0, 1);
        let m0 = k.local_total(0);
        let t0 = k.local_total(3);
        let mut comm = SelfComm::new();
        for _ in 0..10 {
            k.step(&mut comm);
        }
        let m1 = k.local_total(0);
        let t1 = k.local_total(3);
        assert!((m1 - m0).abs() / m0 < 1e-12, "mass drift {m0} → {m1}");
        assert!((t1 - t0).abs() / t0 < 1e-12, "θ drift {t0} → {t1}");
        k.validate().unwrap();
    }

    #[test]
    fn bubble_advects_downwind() {
        // Centre of mass of the θ perturbation must move in +x.
        let p = params(WorkloadClass::Test);
        let mut k = WeatherKernel::new(p, 0, 1);
        let com = |k: &WeatherKernel| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for x in 1..=k.lx {
                for z in 0..k.nz {
                    let pert = k.q[3][x * k.nz + z] - 300.0;
                    if pert > 0.1 {
                        num += pert * x as f64;
                        den += pert;
                    }
                }
            }
            num / den.max(1e-30)
        };
        let c0 = com(&k);
        let mut comm = SelfComm::new();
        for _ in 0..10 {
            k.step(&mut comm);
        }
        let c1 = com(&k);
        assert!(c1 > c0, "bubble must advect east: {c0} → {c1}");
    }

    #[test]
    fn three_rank_native_run_conserves_globally() {
        let p = params(WorkloadClass::Test);
        let totals = ThreadWorld::run(3, |rank, comm| {
            let mut k = WeatherKernel::new(p, rank, 3);
            let before = k.checksum();
            for _ in 0..5 {
                k.step(comm);
            }
            k.validate().unwrap();
            (before, k.checksum())
        });
        let b: f64 = totals.iter().map(|(x, _)| x).sum();
        let a: f64 = totals.iter().map(|(_, y)| y).sum();
        assert!((a - b).abs() / b < 1e-12, "global drift {b} → {a}");
    }

    #[test]
    fn signature_has_no_collectives_and_mixed_boundedness() {
        let sig = Weather.signature(WorkloadClass::Tiny);
        sig.validate().unwrap();
        // Intensity between the strong saturators and the compute codes
        // — the "mixed kernels" observation of §4.1.4.
        let i = sig.intensity();
        assert!(i > 0.5 && i < 3.0, "intensity {i}");
        assert!(sig.simd_fraction < 0.5, "poorly vectorized (§4.1.3)");
        assert_eq!(Weather.meta().collective, "—");
        // Tiny hot working set ≈ 0.6 GB — the cache-fit candidate.
        let ws = sig.working_set_bytes / 1e9;
        assert!(ws > 0.3 && ws < 1.5, "working set {ws} GB");
    }

    #[test]
    fn step_program_is_pure_p2p() {
        let ct = ComputeTimes {
            per_rank: vec![0.02; 4],
            t_flops: vec![0.01; 4],
            t_mem: vec![0.01; 4],
            utilization: vec![0.5; 4],
            effective_mem_bytes: 0.0,
            effective_l3_bytes: 0.0,
            effective_l2_bytes: 0.0,
        };
        let progs = Weather.step_programs(WorkloadClass::Tiny, &ct);
        for p in &progs {
            assert_eq!(p.collective_count(), 0, "weather has no collectives");
            assert!(p.bytes_sent() > 0);
            assert!(p.validate().is_ok());
            assert!((p.compute_seconds() - 0.02).abs() < 1e-12);
        }
    }

    #[test]
    fn config_matches_table_1() {
        let cfg = Weather.config(WorkloadClass::Tiny);
        assert_eq!(cfg.param("Global X-dimension size"), Some("24000"));
        assert_eq!(cfg.param("Model number to use"), Some("6"));
        assert_eq!(cfg.steps, 600);
        let cfg = Weather.config(WorkloadClass::Small);
        assert_eq!(cfg.param("Global X-dimension size"), Some("192000"));
    }
}
