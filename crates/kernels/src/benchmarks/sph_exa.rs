//! `sph-exa` — smoothed-particle hydrodynamics
//! (SPEC id 32, C++14, ~3400 LOC, collective: `MPI_Allreduce`).
//!
//! SPH-EXA is a meshless Lagrangian hydrodynamics mini-app (paper
//! Table 2). In the study it is the **hottest** code of the suite —
//! 98 %/97 % of socket TDP (§4.2.1) — compute-bound on the node but with
//! enough cache sensitivity that its ClusterB/ClusterA acceleration
//! (1.48, §4.1.2) exceeds the pure peak-performance ratio. Multi-node it
//! scales poorly: a comparatively small data set meets both significant
//! point-to-point *and* reduction traffic (§5.1), and the 47 % higher
//! single-node baseline on ClusterB makes its scaling efficiency there
//! even worse (§5.1.3).
//!
//! The analog implements real 3-D SPH on a periodic box: cubic-spline
//! kernel, cell-list neighbor search, density summation, symmetric
//! pressure forces (momentum-conserving), leapfrog integration, 1-D slab
//! decomposition with ghost-particle exchange, and the global CFL/energy
//! `MPI_Allreduce`s.

use spechpc_simmpi::comm::{Comm, ReduceOp};
use spechpc_simmpi::program::{Op, Program};

use crate::common::benchmark::{BenchConfig, BenchMeta, Benchmark, Kernel};
use crate::common::config::WorkloadClass;
use crate::common::decomp::{block_range, factor_3d};
use crate::common::model::ComputeTimes;
use crate::common::signature::WorkloadSignature;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SphParams {
    /// Particles per dimension (total = side³).
    pub side: usize,
    pub steps: u64,
}

pub fn params(class: WorkloadClass) -> SphParams {
    match class {
        WorkloadClass::Test => SphParams { side: 10, steps: 4 },
        WorkloadClass::Tiny => SphParams {
            side: 210,
            steps: 80,
        },
        WorkloadClass::Small => SphParams {
            side: 350,
            steps: 100,
        },
        // sph-exa ships no medium/large workloads.
        WorkloadClass::Medium | WorkloadClass::Large => SphParams {
            side: 500,
            steps: 100,
        },
    }
}

/// The sph-exa suite member.
#[derive(Debug, Default, Clone, Copy)]
pub struct SphExa;

impl Benchmark for SphExa {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "sph-exa",
            spec_id: 32,
            language: "C++14",
            loc: 3400,
            collective: "Allreduce",
            numerics: "Smoothed Particle Hydrodynamics (meshless Lagrangian)",
            domain: "Astrophysics and cosmology",
            supports_medium_large: false,
        }
    }

    fn config(&self, class: WorkloadClass) -> BenchConfig {
        let p = params(class);
        BenchConfig {
            params: vec![
                ("Number of particles to the cube", format!("{}^3", p.side)),
                ("Number of time-steps", p.steps.to_string()),
                ("How often output file shall be written", "-1".into()),
            ],
            steps: p.steps,
        }
    }

    fn signature(&self, class: WorkloadClass) -> WorkloadSignature {
        let p = params(class);
        let n = (p.side * p.side * p.side) as f64;
        WorkloadSignature {
            // ~2500 flops per particle per step (≈100 neighbors × 25
            // flops, twice: density + forces).
            flops: n * 2500.0,
            simd_fraction: 0.70,
            core_efficiency: 0.35,
            // Neighbor gathers sweep ~500 B per particle through the
            // hierarchy; with the small working set much of it becomes
            // cache-resident — the source of the above-peak-ratio
            // ClusterB acceleration (§4.1.2).
            mem_bytes: n * 500.0,
            mem_bytes_per_rank: 0.0,
            l2_bytes: n * 1000.0,
            l3_bytes: n * 800.0,
            // ~100 B per particle: the "comparatively small data set"
            // (0.93 GB tiny) that makes sph-exa cache-sensitive.
            working_set_bytes: n * 100.0,
            cache_exponent: 1.5,
            replicated_fraction: 0.0,
            heat: 1.0,
            steps: p.steps,
        }
    }

    /// Particle-load imbalance: SPH particles cluster, and with fewer
    /// particles per rank the relative density fluctuation across ranks
    /// grows — the per-step `MPI_Allreduce`s then synchronize everyone
    /// to the slowest rank. This is what caps sph-exa's node-level
    /// efficiency at ~80 % (§4.1.1) and wrecks its multi-node scaling
    /// together with the communication overhead (§5.1).
    fn penalties(&self, class: WorkloadClass, nranks: usize) -> Vec<f64> {
        let p = params(class);
        let total = (p.side * p.side * p.side) as f64;
        let local = total / nranks as f64;
        // Relative imbalance ∝ 1/√(local / cluster size); clusters hold
        // ~4·10⁴ particles.
        let spread = (4.0e4 / local).sqrt().min(1.0);
        (0..nranks)
            .map(|r| {
                // Deterministic per-rank draw in [0, 1].
                let mut h: u64 = r as u64 ^ 0x5DEECE66D;
                h = h.wrapping_mul(0x2545F4914F6CDD1D);
                h ^= h >> 33;
                let u = (h % 10_000) as f64 / 10_000.0;
                1.0 + spread * u
            })
            .collect()
    }

    fn step_programs(&self, class: WorkloadClass, compute: &ComputeTimes) -> Vec<Program> {
        let nranks = compute.per_rank.len();
        let p = params(class);
        let n = (p.side * p.side * p.side) as f64;
        // 3-D domain decomposition: ghost layer ≈ the surface shell of
        // the local particle cube, ~2 h thick (h ≈ 2 particle spacings).
        let (px, py, pz) = factor_3d(nranks);
        let local = n / nranks as f64;
        let shell = |dims: usize| -> f64 {
            // Particles in the ghost shell for `dims` split dimensions.
            let cube_side = local.cbrt();
            (dims as f64) * 2.0 * 4.0 * cube_side * cube_side
        };
        let split_dims = [px, py, pz].iter().filter(|&&d| d > 1).count();
        let ghost_particles = shell(split_dims.max(1));
        let ghost_bytes = (ghost_particles * 100.0) as usize;
        (0..nranks)
            .map(|r| {
                let mut prog = Program::new();
                // Ghost exchange with up to 6 face neighbors (ring in
                // each split dimension; simplified to ±1 in rank space
                // per split dimension, matching the slab/pencil/block
                // surface volume).
                let mut req = 0;
                let mut reqs = Vec::new();
                if nranks > 1 {
                    let up = (r + 1) % nranks;
                    let down = (r + nranks - 1) % nranks;
                    // Tag 0: upward-moving ghosts (sent up, received
                    // from below); tag 1: downward-moving ghosts.
                    for (send_to, recv_from, tag) in [(up, down, 0u32), (down, up, 1)] {
                        prog.push(Op::irecv(recv_from, tag, req));
                        reqs.push(req);
                        req += 1;
                        prog.push(Op::isend(send_to, tag, ghost_bytes / 2, req));
                        reqs.push(req);
                        req += 1;
                    }
                }
                for q in reqs {
                    prog.push(Op::wait(q));
                }
                // Density pass, then force pass.
                prog.push(Op::compute(compute.per_rank[r] * 0.45));
                prog.push(Op::compute(compute.per_rank[r] * 0.55));
                // CFL dt, energy check, and domain-rebalance metrics.
                prog.push(Op::allreduce(8));
                prog.push(Op::allreduce(24));
                prog.push(Op::allreduce(8));
                prog.push(Op::allreduce(8));
                prog
            })
            .collect()
    }

    fn make_kernel(
        &self,
        class: WorkloadClass,
        rank: usize,
        nranks: usize,
        _seed: u64,
    ) -> Box<dyn Kernel> {
        let p = params(class);
        Box::new(SphKernel::new(p, rank, nranks))
    }
}

/// Cubic-spline kernel W(r, h), normalized in 3-D.
fn w_cubic(r: f64, h: f64) -> f64 {
    let q = r / h;
    let sigma = 1.0 / (std::f64::consts::PI * h * h * h);
    if q < 1.0 {
        sigma * (1.0 - 1.5 * q * q + 0.75 * q * q * q)
    } else if q < 2.0 {
        let t = 2.0 - q;
        sigma * 0.25 * t * t * t
    } else {
        0.0
    }
}

/// Gradient magnitude dW/dr of the cubic spline.
fn dw_cubic(r: f64, h: f64) -> f64 {
    let q = r / h;
    let sigma = 1.0 / (std::f64::consts::PI * h * h * h * h);
    if q < 1.0 {
        sigma * (-3.0 * q + 2.25 * q * q)
    } else if q < 2.0 {
        let t = 2.0 - q;
        sigma * (-0.75 * t * t)
    } else {
        0.0
    }
}

/// Real SPH kernel: 1-D slab decomposition in x with ghost exchange.
pub struct SphKernel {
    rank: usize,
    nranks: usize,
    /// Local particles: position, velocity.
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    pub density: Vec<f64>,
    mass: f64,
    h: f64,
    /// Global box edge; slabs split x.
    boxl: f64,
    /// x-range of the local slab.
    x_lo: f64,
    x_hi: f64,
    dt: f64,
    pub steps_done: u64,
}

impl SphKernel {
    pub fn new(p: SphParams, rank: usize, nranks: usize) -> Self {
        let side = p.side.min(16); // native-executable scale
        let boxl = side as f64;
        let (lo, hi) = block_range(side, nranks, rank);
        let mut pos = Vec::new();
        // Slightly perturbed lattice (deterministic).
        for x in lo..hi {
            for y in 0..side {
                for z in 0..side {
                    let jitter = |a: usize, b: usize, c: usize, k: f64| {
                        (((a * 73 + b * 37 + c * 11) % 97) as f64 / 97.0 - 0.5) * k
                    };
                    pos.push([
                        x as f64 + 0.5 + jitter(x, y, z, 0.2),
                        y as f64 + 0.5 + jitter(y, z, x, 0.2),
                        z as f64 + 0.5 + jitter(z, x, y, 0.2),
                    ]);
                }
            }
        }
        let n = pos.len();
        SphKernel {
            rank,
            nranks,
            pos,
            vel: vec![[0.0; 3]; n],
            density: vec![0.0; n],
            mass: 1.0,
            h: 1.3,
            boxl,
            x_lo: lo as f64,
            x_hi: hi as f64,
            dt: 1e-3,
            steps_done: 0,
        }
    }

    /// Serialize particles near the slab faces for the ghost exchange.
    fn boundary_particles(&self, upper: bool) -> Vec<f64> {
        let cut = 2.0 * self.h;
        let mut out = Vec::new();
        for p in &self.pos {
            let near = if upper {
                self.x_hi - p[0] < cut
            } else {
                p[0] - self.x_lo < cut
            };
            if near {
                out.extend_from_slice(p);
            }
        }
        out
    }

    /// Gather local + ghost particles.
    fn with_ghosts(&self, comm: &mut dyn Comm) -> Vec<[f64; 3]> {
        let mut all = self.pos.clone();
        if self.nranks > 1 {
            let up = (self.rank + 1) % self.nranks;
            let down = (self.rank + self.nranks - 1) % self.nranks;
            let up_msg = self.boundary_particles(true);
            let down_msg = self.boundary_particles(false);
            // Sizes first (they vary), then payloads.
            let mut sizes = [0.0; 1];
            comm.send(up, 0, &[up_msg.len() as f64]);
            comm.send(down, 1, &[down_msg.len() as f64]);
            comm.recv(down, 0, &mut sizes);
            let mut from_down = vec![0.0; sizes[0] as usize];
            comm.recv(up, 1, &mut sizes);
            let mut from_up = vec![0.0; sizes[0] as usize];
            comm.send(up, 2, &up_msg);
            comm.send(down, 3, &down_msg);
            comm.recv(down, 2, &mut from_down);
            comm.recv(up, 3, &mut from_up);
            for chunk in from_down.chunks_exact(3).chain(from_up.chunks_exact(3)) {
                all.push([chunk[0], chunk[1], chunk[2]]);
            }
        }
        all
    }

    /// Minimum-image displacement.
    fn delta(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let mut d = [0.0; 3];
        for i in 0..3 {
            let mut x = a[i] - b[i];
            if x > self.boxl / 2.0 {
                x -= self.boxl;
            }
            if x < -self.boxl / 2.0 {
                x += self.boxl;
            }
            d[i] = x;
        }
        d
    }

    /// Largest particle speed.
    pub fn max_speed(&self) -> f64 {
        self.vel
            .iter()
            .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
            .fold(0.0, f64::max)
    }

    pub fn total_momentum(&self) -> [f64; 3] {
        let mut m = [0.0; 3];
        for v in &self.vel {
            for d in 0..3 {
                m[d] += self.mass * v[d];
            }
        }
        m
    }
}

impl Kernel for SphKernel {
    fn step(&mut self, comm: &mut dyn Comm) {
        let all = self.with_ghosts(comm);
        let n = self.pos.len();

        // Density summation over local + ghost neighbors (brute force at
        // executable scale; the signature carries cell-list costs).
        for i in 0..n {
            let mut rho = 0.0;
            for pj in &all {
                let d = self.delta(self.pos[i], *pj);
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                if r < 2.0 * self.h {
                    rho += self.mass * w_cubic(r, self.h);
                }
            }
            self.density[i] = rho;
        }

        // Pressure forces, symmetric form (conserves momentum).
        let k_eos = 1.0;
        let rho0 = self.density.iter().sum::<f64>() / n as f64;
        let pressure = |rho: f64| k_eos * (rho - rho0);
        // Ghost densities: approximate by ρ₀ (smooth ICs) — the force
        // asymmetry this introduces vanishes as the lattice relaxes.
        let mut acc = vec![[0.0; 3]; n];
        for i in 0..n {
            let pi = pressure(self.density[i]);
            for (j, pj_pos) in all.iter().enumerate() {
                let d = self.delta(self.pos[i], *pj_pos);
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                if r > 1e-12 && r < 2.0 * self.h {
                    let rho_j = if j < n { self.density[j] } else { rho0 };
                    let pj = pressure(rho_j);
                    let coeff = -self.mass
                        * (pi / (self.density[i] * self.density[i]) + pj / (rho_j * rho_j))
                        * dw_cubic(r, self.h);
                    for dd in 0..3 {
                        acc[i][dd] += coeff * d[dd] / r;
                    }
                }
            }
        }

        // CFL time step: global reduction.
        let vmax = self
            .vel
            .iter()
            .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
            .fold(0.0, f64::max);
        let local_dt = 0.1 * self.h / (vmax + 1.0);
        self.dt = comm.allreduce_scalar(ReduceOp::Min, local_dt).min(1e-2);
        // Energy/diagnostic reductions (as in the original).
        let e_kin: f64 = self
            .vel
            .iter()
            .map(|v| 0.5 * self.mass * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum();
        let _ = comm.allreduce_scalar(ReduceOp::Sum, e_kin);

        // Leapfrog update (positions stay inside the periodic box; at
        // executable scale particles do not cross slab boundaries).
        for i in 0..n {
            for d in 0..3 {
                self.vel[i][d] += self.dt * acc[i][d];
            }
            for d in 0..3 {
                self.pos[i][d] = (self.pos[i][d] + self.dt * self.vel[i][d]).rem_euclid(self.boxl);
            }
        }
        self.steps_done += 1;
    }

    fn validate(&self) -> Result<(), String> {
        for (i, &rho) in self.density.iter().enumerate() {
            if !rho.is_finite() || rho <= 0.0 {
                return Err(format!("bad density {rho} for particle {i}"));
            }
        }
        for v in &self.vel {
            if v.iter().any(|x| !x.is_finite()) {
                return Err("non-finite velocity".into());
            }
        }
        Ok(())
    }

    fn checksum(&self) -> f64 {
        self.pos.iter().map(|p| p[0] + p[1] + p[2]).sum::<f64>() + self.density.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_simmpi::comm::SelfComm;
    use spechpc_simmpi::threadcomm::ThreadWorld;

    #[test]
    fn kernel_function_properties() {
        let h = 1.3;
        // Positive inside the support, zero outside.
        assert!(w_cubic(0.0, h) > 0.0);
        assert!(w_cubic(1.9 * h, h) > 0.0);
        assert_eq!(w_cubic(2.1 * h, h), 0.0);
        // Monotonically decreasing.
        assert!(w_cubic(0.0, h) > w_cubic(0.5 * h, h));
        assert!(w_cubic(0.5 * h, h) > w_cubic(1.5 * h, h));
        // Gradient is non-positive (attractive towards the centre).
        assert!(dw_cubic(0.5 * h, h) < 0.0);
        assert_eq!(dw_cubic(2.5 * h, h), 0.0);
    }

    #[test]
    fn density_positive_single_rank() {
        let mut k = SphKernel::new(params(WorkloadClass::Test), 0, 1);
        let mut comm = SelfComm::new();
        k.step(&mut comm);
        k.validate().unwrap();
        // On a near-uniform lattice, densities are near-uniform.
        let mean = k.density.iter().sum::<f64>() / k.density.len() as f64;
        for &rho in &k.density {
            assert!(
                (rho - mean).abs() / mean < 0.5,
                "wild density {rho} vs {mean}"
            );
        }
    }

    #[test]
    fn momentum_stays_small_single_rank() {
        // Symmetric pairwise forces: total momentum stays ≈ 0.
        let mut k = SphKernel::new(params(WorkloadClass::Test), 0, 1);
        let mut comm = SelfComm::new();
        for _ in 0..3 {
            k.step(&mut comm);
        }
        let p = k.total_momentum();
        let v_scale: f64 = k
            .vel
            .iter()
            .map(|v| v[0].abs() + v[1].abs() + v[2].abs())
            .sum::<f64>()
            .max(1e-30);
        for d in 0..3 {
            assert!(
                p[d].abs() < 1e-8 * v_scale.max(1.0),
                "momentum drift {p:?} vs velocity scale {v_scale}"
            );
        }
    }

    #[test]
    fn two_rank_native_run_is_consistent() {
        let p = params(WorkloadClass::Test);
        let sums = ThreadWorld::run(2, |rank, comm| {
            let mut k = SphKernel::new(p, rank, 2);
            for _ in 0..2 {
                k.step(comm);
            }
            k.validate().unwrap();
            k.density.iter().sum::<f64>()
        });
        assert!(sums.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn signature_is_the_hottest_and_compute_bound() {
        let sig = SphExa.signature(WorkloadClass::Tiny);
        sig.validate().unwrap();
        assert_eq!(sig.heat, 1.0, "sph-exa is the hottest code (§4.2.1)");
        // Compute-dominated, but with enough cache-hierarchy traffic to
        // be cache-sensitive (intensity 5 against the hierarchy, much
        // higher against DRAM once the set is partially resident).
        assert!(sig.intensity() > 3.0, "compute bound: {}", sig.intensity());
        // Small working set (~0.93 GB): the cache-sensitivity driver.
        let ws = sig.working_set_bytes / 1e9;
        assert!(ws > 0.5 && ws < 1.5, "working set {ws} GB");
        assert!(!SphExa.meta().supports_medium_large);
    }

    #[test]
    fn step_program_mixes_p2p_and_reductions() {
        let ct = ComputeTimes {
            per_rank: vec![0.01; 8],
            t_flops: vec![0.01; 8],
            t_mem: vec![0.0; 8],
            utilization: vec![1.0; 8],
            effective_mem_bytes: 0.0,
            effective_l3_bytes: 0.0,
            effective_l2_bytes: 0.0,
        };
        let progs = SphExa.step_programs(WorkloadClass::Tiny, &ct);
        for p in &progs {
            assert_eq!(p.collective_count(), 4);
            assert!(p.bytes_sent() > 0);
            assert!(p.validate().is_ok());
        }
    }
}
