//! `hpgmgfv` — finite-volume high-performance geometric multigrid
//! (SPEC id 34, C, ~16700 LOC, collective: `MPI_Allreduce`).
//!
//! HPGMG-FV solves variable-coefficient elliptic problems on Cartesian
//! grids with a full multigrid method (paper Table 2). In the study it
//! is memory-bound but only *weakly* saturating — it becomes less
//! memory-bound with more cores (§4.1.4) because coarse levels live in
//! cache. Multi-node it is scaling case C (§5.1): memory traffic drops
//! with node count (cache effects) but the anticipated superlinear
//! speedup is outweighed by growing communication cost — V-cycles
//! exchange halos on *every* level, and the coarse levels send many
//! latency-bound small messages; reductions add on top.
//!
//! The analog implements a real 3-D Poisson V-cycle: Jacobi smoothing,
//! full-weighting restriction, trilinear prolongation, a direct smooth
//! at the coarsest level, 1-cell halo exchange per smoother application
//! on every level (slab decomposition in z), and the residual-norm
//! `MPI_Allreduce`. The tested invariant is the multigrid contraction:
//! each V-cycle reduces the residual by a grid-independent factor.

use spechpc_simmpi::comm::{Comm, ReduceOp};
use spechpc_simmpi::program::{Op, Program};

use crate::common::benchmark::{BenchConfig, BenchMeta, Benchmark, Kernel};
use crate::common::config::WorkloadClass;
use crate::common::decomp::{block_range, Grid3d};
use crate::common::model::ComputeTimes;
use crate::common::signature::WorkloadSignature;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HpgmgParams {
    /// log2 of the box dimension (finest-grid boxes are `2^box` cells).
    pub log2_box: u32,
    /// log2 of the global grid dimension.
    pub log2_grid: u32,
    pub steps: u64,
}

impl HpgmgParams {
    pub fn grid_dim(&self) -> usize {
        1 << self.log2_grid
    }
    /// Multigrid levels down to 4³.
    pub fn levels(&self) -> u32 {
        self.log2_grid.saturating_sub(2).max(1)
    }
}

pub fn params(class: WorkloadClass) -> HpgmgParams {
    match class {
        WorkloadClass::Test => HpgmgParams {
            log2_box: 3,
            log2_grid: 5,
            steps: 3,
        },
        WorkloadClass::Tiny => HpgmgParams {
            log2_box: 5,
            log2_grid: 9,
            steps: 300,
        },
        WorkloadClass::Small => HpgmgParams {
            log2_box: 5,
            log2_grid: 10,
            steps: 300,
        },
        WorkloadClass::Medium => HpgmgParams {
            log2_box: 5,
            log2_grid: 11,
            steps: 300,
        },
        WorkloadClass::Large => HpgmgParams {
            log2_box: 5,
            log2_grid: 12,
            steps: 300,
        },
    }
}

/// The hpgmgfv suite member.
#[derive(Debug, Default, Clone, Copy)]
pub struct Hpgmgfv;

impl Benchmark for Hpgmgfv {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "hpgmgfv",
            spec_id: 34,
            language: "C",
            loc: 16700,
            collective: "Allreduce",
            numerics: "Finite-volume geometric multigrid, variable-coefficient elliptic",
            domain: "Cosmology, astrophysics, combustion",
            supports_medium_large: true,
        }
    }

    fn config(&self, class: WorkloadClass) -> BenchConfig {
        let p = params(class);
        BenchConfig {
            params: vec![
                ("Log to base 2 of the box dimension", p.log2_box.to_string()),
                (
                    "Log to base 2 of the grid dimension",
                    p.log2_grid.to_string(),
                ),
                ("Number of time-steps", p.steps.to_string()),
            ],
            steps: p.steps,
        }
    }

    fn signature(&self, class: WorkloadClass) -> WorkloadSignature {
        let p = params(class);
        let n = (p.grid_dim() as f64).powi(3);
        // One V-cycle: ~4 smoother sweeps + residual + transfer on the
        // fine level, coarser levels add the 1/7 geometric tail.
        let level_factor = 8.0 / 7.0;
        WorkloadSignature {
            flops: n * 30.0 * level_factor,
            simd_fraction: 0.75,
            core_efficiency: 0.5,
            mem_bytes: n * 110.0 * level_factor,
            mem_bytes_per_rank: 0.0,
            l2_bytes: n * 180.0 * level_factor,
            l3_bytes: n * 150.0 * level_factor,
            working_set_bytes: n * 4.0 * 8.0 * level_factor,
            cache_exponent: 1.0,
            replicated_fraction: 0.0,
            heat: 0.45,
            steps: p.steps,
        }
    }

    fn step_programs(&self, class: WorkloadClass, compute: &ComputeTimes) -> Vec<Program> {
        let nranks = compute.per_rank.len();
        let p = params(class);
        let dim = p.grid_dim();
        let grid = Grid3d::new(dim, dim, dim, nranks);
        let levels = p.levels();
        // Compute share of level l (geometric decay 1/8 per level).
        let weights: Vec<f64> = (0..levels).map(|l| 0.125f64.powi(l as i32)).collect();
        let wsum: f64 = weights.iter().sum::<f64>() * 2.0; // down + up legs
        (0..nranks)
            .map(|r| {
                let mut prog = Program::new();
                let ((x0, x1), (y0, y1), (z0, z1)) = grid.tile(r);
                let nb = grid.neighbors(r);
                // Down-leg then up-leg: halo exchange + compute per level.
                for leg in 0..2u32 {
                    let levels_iter: Vec<u32> = if leg == 0 {
                        (0..levels).collect()
                    } else {
                        (0..levels).rev().collect()
                    };
                    for l in levels_iter {
                        let shrink = 1usize << l;
                        let (lx, ly, lz) = (
                            ((x1 - x0) / shrink).max(1),
                            ((y1 - y0) / shrink).max(1),
                            ((z1 - z0) / shrink).max(1),
                        );
                        let faces = [ly * lz, ly * lz, lx * lz, lx * lz, lx * ly, lx * ly];
                        // HPGMG exchanges ghost zones *per box*
                        // (2^log2_box cells across): each face is
                        // fragmented into one message per box face,
                        // which makes the fine levels message-count
                        // heavy and the coarse levels latency-bound —
                        // the §5.1 case-C communication growth.
                        // Boxes hold up to 32³ cells at every level (coarse
                        // levels simply have fewer boxes), so the per-box
                        // face is 32² cells.
                        let box_face = 1usize << (2 * p.log2_box);
                        // Each level visit applies two smoother sweeps
                        // plus a residual/transfer, each needing fresh
                        // ghosts: three exchange rounds.
                        for round in 0..3u32 {
                            for dir in 0..6 {
                                let to = nb[dir];
                                let from = nb[dir ^ 1];
                                let face_cells = faces[dir];
                                let frags = (face_cells / box_face).clamp(1, 16);
                                let bytes = face_cells * 8 / frags;
                                for frag in 0..frags {
                                    let tag = leg * 100_000
                                        + round * 20_000
                                        + l * 2000
                                        + dir as u32 * 100
                                        + frag as u32;
                                    match (to, from) {
                                        (Some(to), Some(from)) => {
                                            prog.push(Op::sendrecv(to, bytes, from, tag))
                                        }
                                        (Some(to), None) => prog.push(Op::send(to, tag, bytes)),
                                        (None, Some(from)) => prog.push(Op::recv(from, tag)),
                                        (None, None) => {}
                                    }
                                }
                            }
                        }
                        let share = 0.125f64.powi(l as i32) / wsum;
                        prog.push(Op::compute(compute.per_rank[r] * share));
                        // Coarse-grid iterative solve: residual checks.
                        if l + 1 == levels {
                            for _ in 0..8 {
                                prog.push(Op::allreduce(8));
                            }
                        }
                    }
                }
                // Residual norm of the cycle.
                prog.push(Op::allreduce(8));
                prog
            })
            .collect()
    }

    fn make_kernel(
        &self,
        class: WorkloadClass,
        rank: usize,
        nranks: usize,
        _seed: u64,
    ) -> Box<dyn Kernel> {
        let p = params(class);
        Box::new(HpgmgKernel::new(p, rank, nranks))
    }
}

/// One multigrid level: slab-decomposed (in z) field with 1-cell halo.
struct Level {
    /// Global cells per dimension at this level.
    dim: usize,
    /// Local z-extent (slab), plus the x/y extents (= dim).
    lz: usize,
    /// Solution, right-hand side, residual: `(lz+2) × dim × dim`
    /// (x/y periodic wrap handled by index arithmetic).
    u: Vec<f64>,
    b: Vec<f64>,
}

/// Real V-cycle Poisson solver. `Kernel::step` = one V-cycle.
pub struct HpgmgKernel {
    rank: usize,
    nranks: usize,
    levels: Vec<Level>,
    pub last_residual: f64,
    pub residual_history: Vec<f64>,
}

impl HpgmgKernel {
    pub fn new(p: HpgmgParams, rank: usize, nranks: usize) -> Self {
        // Executable scale: cap the grid; slabs need ≥ 2 planes per
        // rank at every level, which bounds nranks for native runs.
        let dim = p.grid_dim().min(32);
        let nlev = (dim.trailing_zeros().saturating_sub(1)).max(1);
        let mut levels = Vec::new();
        for l in 0..nlev {
            let d = dim >> l;
            let (z0, z1) = block_range(d, nranks, rank);
            let lz = z1 - z0;
            assert!(lz >= 1, "level {l}: slab too thin for {nranks} ranks");
            let mut level = Level {
                dim: d,
                lz,
                u: vec![0.0; (lz + 2) * d * d],
                b: vec![0.0; (lz + 2) * d * d],
            };
            if l == 0 {
                // Deterministic oscillatory RHS, made exactly zero-mean
                // (the periodic Laplacian is singular on constants, so a
                // mean component could never be resolved). The global
                // mean is computed redundantly on every rank — cheap at
                // executable scale and communication-free.
                let rhs = |x: usize, y: usize, gz: usize| -> f64 {
                    ((x as f64 * 0.7).sin() * (y as f64 * 0.5).cos() * (gz as f64 * 0.3).sin())
                        * 2.0
                };
                let mut mean = 0.0;
                for gz in 0..d {
                    for y in 0..d {
                        for x in 0..d {
                            mean += rhs(x, y, gz);
                        }
                    }
                }
                mean /= (d * d * d) as f64;
                for z in 0..lz {
                    for y in 0..d {
                        for x in 0..d {
                            let i = ((z + 1) * d + y) * d + x;
                            level.b[i] = rhs(x, y, z0 + z) - mean;
                        }
                    }
                }
            }
            levels.push(level);
        }
        HpgmgKernel {
            rank,
            nranks,
            levels,
            last_residual: f64::INFINITY,
            residual_history: Vec::new(),
        }
    }

    /// Exchange the z-halo planes of level `l`'s `u` field.
    fn halo(&mut self, l: usize, comm: &mut dyn Comm) {
        let level = &self.levels[l];
        let d = level.dim;
        let lz = level.lz;
        let plane = d * d;
        let up = (self.rank + 1) % self.nranks;
        let down = (self.rank + self.nranks - 1) % self.nranks;
        let top: Vec<f64> = self.levels[l].u[lz * plane..(lz + 1) * plane].to_vec();
        let bottom: Vec<f64> = self.levels[l].u[plane..2 * plane].to_vec();
        let mut from_below = vec![0.0; plane];
        let mut from_above = vec![0.0; plane];
        if self.nranks > 1 {
            let tag = (l * 4) as u32;
            comm.send(up, tag, &top);
            comm.send(down, tag + 1, &bottom);
            comm.recv(down, tag, &mut from_below);
            comm.recv(up, tag + 1, &mut from_above);
        } else {
            // Periodic wrap on a single rank.
            from_below.copy_from_slice(&top);
            from_above.copy_from_slice(&bottom);
        }
        self.levels[l].u[0..plane].copy_from_slice(&from_below);
        let off = (lz + 1) * plane;
        self.levels[l].u[off..off + plane].copy_from_slice(&from_above);
    }

    /// Residual `r = b − A u` at level `l` into `out` (interior planes).
    /// `A = −∇²` (periodic in x/y, rank-exchanged in z).
    fn residual(&self, l: usize, out: &mut [f64]) {
        let level = &self.levels[l];
        let d = level.dim;
        for z in 1..=level.lz {
            for y in 0..d {
                for x in 0..d {
                    let xm = (x + d - 1) % d;
                    let xp = (x + 1) % d;
                    let ym = (y + d - 1) % d;
                    let yp = (y + 1) % d;
                    let i = (z * d + y) * d + x;
                    let au = 6.0 * level.u[i]
                        - level.u[(z * d + y) * d + xm]
                        - level.u[(z * d + y) * d + xp]
                        - level.u[(z * d + ym) * d + x]
                        - level.u[(z * d + yp) * d + x]
                        - level.u[((z - 1) * d + y) * d + x]
                        - level.u[((z + 1) * d + y) * d + x];
                    out[i] = level.b[i] - au;
                }
            }
        }
    }

    /// Weighted-Jacobi smoothing sweeps on level `l`.
    fn smooth(&mut self, l: usize, sweeps: usize, comm: &mut dyn Comm) {
        let omega = 6.0 / 7.0;
        for _ in 0..sweeps {
            self.halo(l, comm);
            let level = &self.levels[l];
            let d = level.dim;
            let mut unew = level.u.clone();
            for z in 1..=level.lz {
                for y in 0..d {
                    for x in 0..d {
                        let xm = (x + d - 1) % d;
                        let xp = (x + 1) % d;
                        let ym = (y + d - 1) % d;
                        let yp = (y + 1) % d;
                        let i = (z * d + y) * d + x;
                        let nb_sum = level.u[(z * d + y) * d + xm]
                            + level.u[(z * d + y) * d + xp]
                            + level.u[(z * d + ym) * d + x]
                            + level.u[(z * d + yp) * d + x]
                            + level.u[((z - 1) * d + y) * d + x]
                            + level.u[((z + 1) * d + y) * d + x];
                        let jac = (level.b[i] + nb_sum) / 6.0;
                        unew[i] = (1.0 - omega) * level.u[i] + omega * jac;
                    }
                }
            }
            self.levels[l].u = unew;
        }
    }

    /// Global L2 norm of the fine-level residual.
    fn residual_norm(&mut self, comm: &mut dyn Comm) -> f64 {
        self.halo(0, comm);
        let level = &self.levels[0];
        let mut r = vec![0.0; level.u.len()];
        self.residual(0, &mut r);
        let local: f64 = r.iter().map(|x| x * x).sum();
        comm.allreduce_scalar(ReduceOp::Sum, local).sqrt()
    }
}

impl Kernel for HpgmgKernel {
    /// One V(2,2)-cycle.
    fn step(&mut self, comm: &mut dyn Comm) {
        let nlev = self.levels.len();
        // Down leg.
        for l in 0..nlev - 1 {
            self.smooth(l, 2, comm);
            self.halo(l, comm);
            let mut r = vec![0.0; self.levels[l].u.len()];
            self.residual(l, &mut r);
            // Full-weighting (here: 8-cell averaging) restriction of the
            // residual to the coarse RHS; coarse u starts at zero.
            let (df, lzf) = (self.levels[l].dim, self.levels[l].lz);
            let dc = self.levels[l + 1].dim;
            let lzc = self.levels[l + 1].lz;
            debug_assert_eq!(lzf, lzc * 2, "slab sizes must nest");
            let coarse = &mut self.levels[l + 1];
            coarse.u.iter_mut().for_each(|v| *v = 0.0);
            for z in 0..lzc {
                for y in 0..dc {
                    for x in 0..dc {
                        let mut s = 0.0;
                        for dz in 0..2 {
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let i = ((2 * z + dz + 1) * df + 2 * y + dy) * df + 2 * x + dx;
                                    s += r[i];
                                }
                            }
                        }
                        let i = ((z + 1) * dc + y) * dc + x;
                        // Factor 4 = h²-scaling of −∇² under coarsening
                        // (restriction avg × 4 keeps the operator
                        // consistent in cell units).
                        coarse.b[i] = s / 8.0 * 4.0;
                    }
                }
            }
        }
        // Coarsest solve: many smoothing sweeps.
        self.smooth(nlev - 1, 20, comm);
        // Up leg.
        for l in (0..nlev - 1).rev() {
            // Prolongate (piecewise-constant injection) and correct.
            let dc = self.levels[l + 1].dim;
            let lzc = self.levels[l + 1].lz;
            let df = self.levels[l].dim;
            let correction: Vec<f64> = self.levels[l + 1].u.clone();
            let fine = &mut self.levels[l];
            for z in 0..lzc {
                for y in 0..dc {
                    for x in 0..dc {
                        let c = correction[((z + 1) * dc + y) * dc + x];
                        for dz in 0..2 {
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let i = ((2 * z + dz + 1) * df + 2 * y + dy) * df + 2 * x + dx;
                                    fine.u[i] += c;
                                }
                            }
                        }
                    }
                }
            }
            self.smooth(l, 2, comm);
        }
        self.last_residual = self.residual_norm(comm);
        self.residual_history.push(self.last_residual);
    }

    fn validate(&self) -> Result<(), String> {
        if !self.last_residual.is_finite() {
            return Err("residual not finite".into());
        }
        // Contraction: each cycle must reduce the residual.
        for w in self.residual_history.windows(2) {
            if w[1] > w[0] * 1.01 {
                return Err(format!("V-cycle diverged: {} → {}", w[0], w[1]));
            }
        }
        if self.levels[0].u.iter().any(|v| !v.is_finite()) {
            return Err("non-finite solution".into());
        }
        Ok(())
    }

    fn checksum(&self) -> f64 {
        let level = &self.levels[0];
        let d = level.dim;
        let mut s = 0.0;
        for z in 1..=level.lz {
            for y in 0..d {
                for x in 0..d {
                    s += level.u[(z * d + y) * d + x];
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_simmpi::comm::SelfComm;
    use spechpc_simmpi::threadcomm::ThreadWorld;

    #[test]
    fn vcycle_contracts_the_residual() {
        let mut k = HpgmgKernel::new(params(WorkloadClass::Test), 0, 1);
        let mut comm = SelfComm::new();
        let r0 = k.residual_norm(&mut comm);
        k.step(&mut comm);
        let r1 = k.last_residual;
        k.step(&mut comm);
        let r2 = k.last_residual;
        assert!(r1 < 0.35 * r0, "weak first contraction: {r0} → {r1}");
        assert!(r2 < 0.35 * r1, "weak second contraction: {r1} → {r2}");
        k.validate().unwrap();
    }

    #[test]
    fn two_rank_native_vcycle_contracts() {
        let p = params(WorkloadClass::Test);
        let results = ThreadWorld::run(2, |rank, comm| {
            let mut k = HpgmgKernel::new(p, rank, 2);
            k.step(comm);
            k.step(comm);
            k.validate().unwrap();
            k.residual_history.clone()
        });
        // Residual norms are global: identical across ranks.
        assert_eq!(results[0].len(), 2);
        for i in 0..2 {
            assert!((results[0][i] - results[1][i]).abs() < 1e-9);
        }
        assert!(results[0][1] < results[0][0]);
    }

    #[test]
    fn signature_weakly_memory_bound() {
        let sig = Hpgmgfv.signature(WorkloadClass::Tiny);
        sig.validate().unwrap();
        // Higher intensity than the strong saturators (tealeaf ~0.175),
        // still well below compute-bound codes.
        let i = sig.intensity();
        assert!(i > 0.2 && i < 1.0, "intensity {i}");
    }

    #[test]
    fn step_program_touches_every_level_twice() {
        let ct = ComputeTimes {
            per_rank: vec![0.01; 8],
            t_flops: vec![0.0; 8],
            t_mem: vec![0.01; 8],
            utilization: vec![0.2; 8],
            effective_mem_bytes: 0.0,
            effective_l3_bytes: 0.0,
            effective_l2_bytes: 0.0,
        };
        let p = params(WorkloadClass::Tiny);
        let progs = Hpgmgfv.step_programs(WorkloadClass::Tiny, &ct);
        for prog in &progs {
            // 2 legs × levels compute phases.
            let computes = prog
                .ops
                .iter()
                .filter(|o| matches!(o, Op::Compute { .. }))
                .count();
            assert_eq!(computes, 2 * p.levels() as usize);
            // Compute budget preserved.
            assert!((prog.compute_seconds() - 0.01).abs() < 1e-12);
            assert!(prog.validate().is_ok());
            // Coarse levels send small (latency-bound) messages: the
            // smallest message must be far below the eager threshold.
            let min_msg = prog
                .ops
                .iter()
                .filter_map(|o| match o {
                    Op::Sendrecv { send_bytes, .. } => Some(*send_bytes),
                    Op::Send { bytes, .. } => Some(*bytes),
                    _ => None,
                })
                .min()
                .unwrap_or(usize::MAX);
            assert!(min_msg < 64 * 1024, "no small coarse-level messages");
        }
    }

    #[test]
    fn config_matches_table_1() {
        let cfg = Hpgmgfv.config(WorkloadClass::Tiny);
        assert_eq!(cfg.param("Log to base 2 of the box dimension"), Some("5"));
        assert_eq!(cfg.param("Log to base 2 of the grid dimension"), Some("9"));
        assert_eq!(cfg.steps, 300);
        let cfg = Hpgmgfv.config(WorkloadClass::Small);
        assert_eq!(cfg.param("Log to base 2 of the grid dimension"), Some("10"));
    }
}
