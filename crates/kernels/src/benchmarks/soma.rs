//! `soma` — Monte-Carlo acceleration for soft coarse-grained polymers
//! (SPEC id 13, C, ~9500 LOC, collective: `MPI_Allreduce`).
//!
//! SOMA simulates soft polymer melts: polymer chains move by Monte-Carlo
//! displacements in a self-consistent density field that must be kept
//! globally synchronized — each rank holds a **full replica** of the
//! density grid and the replicas are combined by a large per-step
//! `MPI_Allreduce`. That replica is the root of the paper's "intriguing
//! non-memory-bound case of soma" (§5.1.2): aggregate memory traffic
//! rises *linearly* with the rank count while the reduction overhead
//! rises logarithmically, so per-node bandwidth climbs (to ~150 GB/s on
//! ClusterA, far below the 306 GB/s limit) and then sits constant while
//! scaling stops. soma is also the *coolest* code of the suite — 89 %/
//! 85 % of socket TDP (§4.2.1) — and the most reduction-bound (§5).
//!
//! The analog implements a real MC polymer model: bead chains with
//! harmonic bonds and a soft density-repulsion term, Metropolis
//! acceptance driven by a deterministic per-rank RNG, local density-grid
//! accumulation, and the global density `MPI_Allreduce` every step.

use spechpc_simmpi::comm::{Comm, ReduceOp};
use spechpc_simmpi::program::{Op, Program};

use crate::common::benchmark::{BenchConfig, BenchMeta, Benchmark, Kernel};
use crate::common::config::WorkloadClass;
use crate::common::model::ComputeTimes;
use crate::common::rng::Rng;
use crate::common::signature::WorkloadSignature;

/// Beads per polymer chain (SOMA's default coarse-graining).
const BEADS: usize = 32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SomaParams {
    pub polymers: usize,
    pub steps: u64,
    pub seed: u64,
    /// Density grid cells per dimension (replicated on every rank).
    pub grid: usize,
}

pub fn params(class: WorkloadClass) -> SomaParams {
    match class {
        WorkloadClass::Test => SomaParams {
            polymers: 200,
            steps: 5,
            seed: 42,
            grid: 8,
        },
        WorkloadClass::Tiny => SomaParams {
            polymers: 14_000_000,
            steps: 200,
            seed: 42,
            grid: 128, // ~16 MB replica per rank
        },
        WorkloadClass::Small => SomaParams {
            polymers: 25_000_000,
            steps: 400,
            seed: 42,
            // The small workload simulates a larger box: ~48 MB replica.
            grid: 182,
        },
        // soma ships no medium/large workloads.
        WorkloadClass::Medium | WorkloadClass::Large => SomaParams {
            polymers: 50_000_000,
            steps: 400,
            seed: 42,
            grid: 203,
        },
    }
}

/// Bytes of the replicated density grid (one f64 per cell).
pub fn replica_bytes(p: &SomaParams) -> f64 {
    (p.grid * p.grid * p.grid) as f64 * 8.0
}

/// The soma suite member.
#[derive(Debug, Default, Clone, Copy)]
pub struct Soma;

impl Benchmark for Soma {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "soma",
            spec_id: 13,
            language: "C",
            loc: 9500,
            collective: "Allreduce",
            numerics: "Monte-Carlo acceleration for soft coarse-grained polymers",
            domain: "Physics of polymeric systems",
            supports_medium_large: false,
        }
    }

    fn config(&self, class: WorkloadClass) -> BenchConfig {
        let p = params(class);
        BenchConfig {
            params: vec![
                (
                    "Initial seed for the random number generator",
                    p.seed.to_string(),
                ),
                ("Number of simulated time steps", p.steps.to_string()),
                ("Number of simulated polymers", p.polymers.to_string()),
            ],
            steps: p.steps,
        }
    }

    fn signature(&self, class: WorkloadClass) -> WorkloadSignature {
        let p = params(class);
        let beads = (p.polymers * BEADS) as f64;
        let replica = replica_bytes(&p);
        // Distributed polymer data: position + velocity-like state per
        // bead (~24 B) — plus one density replica *per rank* (expressed
        // through replicated_fraction over a one-rank baseline).
        let distributed_ws = beads * 24.0;
        let ws = distributed_ws + replica;
        WorkloadSignature {
            // ~30 flops per MC bead move (bond energy, field lookup,
            // Metropolis) — branchy, gather-heavy, hardly vectorizable.
            flops: beads * 30.0,
            simd_fraction: 0.09,
            core_efficiency: 0.3,
            // Bead sweeps enjoy good chain locality: ~8 B per bead
            // reach DRAM.
            mem_bytes: beads * 8.0,
            // ~1.5 effective passes over the replicated density grid per
            // rank per step (zero/accumulate partially cached, plus the
            // reduction copy): the per-rank traffic behind the §5.1.2
            // anomaly — aggregate memory volume grows linearly with the
            // rank count.
            mem_bytes_per_rank: replica * 1.5,
            l2_bytes: beads * 96.0,
            l3_bytes: beads * 60.0,
            working_set_bytes: ws,
            cache_exponent: 1.0,
            replicated_fraction: replica / ws,
            heat: 0.0,
            steps: p.steps,
        }
    }

    fn step_programs(&self, class: WorkloadClass, compute: &ComputeTimes) -> Vec<Program> {
        let nranks = compute.per_rank.len();
        let p = params(class);
        let replica = replica_bytes(&p) as usize;
        (0..nranks)
            .map(|r| {
                let mut prog = Program::new();
                prog.push(Op::compute(compute.per_rank[r]));
                // The big density-field reduction…
                prog.push(Op::allreduce(replica));
                // …plus the small acceptance-statistics reduction.
                prog.push(Op::allreduce(16));
                prog
            })
            .collect()
    }

    fn make_kernel(
        &self,
        class: WorkloadClass,
        rank: usize,
        nranks: usize,
        seed: u64,
    ) -> Box<dyn Kernel> {
        let p = params(class);
        Box::new(SomaKernel::new(p, rank, nranks, seed))
    }
}

/// Real MC polymer kernel: each rank owns `polymers / nranks` chains.
pub struct SomaKernel {
    /// Bead positions, flattened chains: `[chain][bead][xyz]`.
    pos: Vec<[f64; 3]>,
    /// Box edge length (periodic).
    boxl: f64,
    /// Replicated density grid (global state after the allreduce).
    pub density: Vec<f64>,
    grid: usize,
    rng: Rng,
    /// Accepted / attempted moves of the last step.
    pub accepted: u64,
    pub attempted: u64,
    /// Soft repulsion strength against the density field.
    kappa: f64,
    /// Harmonic bond strength.
    kbond: f64,
}

impl SomaKernel {
    pub fn new(p: SomaParams, rank: usize, nranks: usize, seed: u64) -> Self {
        // Miniature executable scale: cap the per-rank chain count so
        // native runs stay tractable; the signature carries full scale.
        let total = p.polymers.min(100_000);
        let chains = crate::common::decomp::block_range(total, nranks, rank);
        let chains = chains.1 - chains.0;
        let boxl = 32.0;
        let mut rng = Rng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let mut pos = Vec::with_capacity(chains * BEADS);
        for _ in 0..chains {
            // Random-walk chain growth from a random start.
            let mut at = [
                rng.next_f64() * boxl,
                rng.next_f64() * boxl,
                rng.next_f64() * boxl,
            ];
            for _ in 0..BEADS {
                pos.push(at);
                for d in 0..3 {
                    at[d] = (at[d] + rng.next_f64() - 0.5).rem_euclid(boxl);
                }
            }
        }
        let _ = chains;
        SomaKernel {
            pos,
            boxl,
            density: vec![0.0; p.grid * p.grid * p.grid],
            grid: p.grid,
            rng,
            accepted: 0,
            attempted: 0,
            kappa: 2.0,
            kbond: 1.0,
        }
    }

    fn cell_of(&self, p: [f64; 3]) -> usize {
        let g = self.grid as f64;
        let ix = ((p[0] / self.boxl * g) as usize).min(self.grid - 1);
        let iy = ((p[1] / self.boxl * g) as usize).min(self.grid - 1);
        let iz = ((p[2] / self.boxl * g) as usize).min(self.grid - 1);
        (iz * self.grid + iy) * self.grid + ix
    }

    /// Minimum-image distance squared on the periodic box.
    fn dist2(&self, a: [f64; 3], b: [f64; 3]) -> f64 {
        let mut s = 0.0;
        for d in 0..3 {
            let mut dx = (a[d] - b[d]).abs();
            if dx > self.boxl / 2.0 {
                dx = self.boxl - dx;
            }
            s += dx * dx;
        }
        s
    }

    /// Bond energy of bead `i` within its chain.
    fn bond_energy(&self, i: usize, p: [f64; 3]) -> f64 {
        let bead = i % BEADS;
        let mut e = 0.0;
        if bead > 0 {
            e += 0.5 * self.kbond * self.dist2(p, self.pos[i - 1]);
        }
        if bead + 1 < BEADS {
            e += 0.5 * self.kbond * self.dist2(p, self.pos[i + 1]);
        }
        e
    }

    /// Field energy: soft repulsion proportional to the local density.
    fn field_energy(&self, p: [f64; 3]) -> f64 {
        self.kappa * self.density[self.cell_of(p)]
    }

    pub fn bead_count(&self) -> usize {
        self.pos.len()
    }

    /// Adjust the soft-repulsion strength (test hook).
    pub fn set_kappa(&mut self, kappa: f64) {
        self.kappa = kappa;
    }
}

impl Kernel for SomaKernel {
    fn step(&mut self, comm: &mut dyn Comm) {
        // MC sweep: one trial displacement per bead.
        let (mut acc, mut att) = (0u64, 0u64);
        for i in 0..self.pos.len() {
            let old = self.pos[i];
            let mut new = old;
            for d in 0..3 {
                new[d] = (new[d] + (self.rng.next_f64() - 0.5) * 0.5).rem_euclid(self.boxl);
            }
            let de = self.bond_energy(i, new) + self.field_energy(new)
                - self.bond_energy(i, old)
                - self.field_energy(old);
            att += 1;
            if de <= 0.0 || self.rng.next_f64() < (-de).exp() {
                self.pos[i] = new;
                acc += 1;
            }
        }
        self.accepted = acc;
        self.attempted = att;

        // Rebuild the local density contribution and combine the
        // replicas globally — the big per-step Allreduce.
        self.density.iter_mut().for_each(|d| *d = 0.0);
        for i in 0..self.pos.len() {
            let c = self.cell_of(self.pos[i]);
            self.density[c] += 1.0;
        }
        comm.allreduce(ReduceOp::Sum, &mut self.density);
        // Acceptance statistics (the small reduction).
        let mut stats = [acc as f64, att as f64];
        comm.allreduce(ReduceOp::Sum, &mut stats);
    }

    fn validate(&self) -> Result<(), String> {
        if self.attempted > 0 {
            let rate = self.accepted as f64 / self.attempted as f64;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("nonsense acceptance rate {rate}"));
            }
            if rate == 0.0 {
                return Err("no move accepted — dynamics frozen".into());
            }
        }
        for p in &self.pos {
            for d in 0..3 {
                if !(0.0..=self.boxl).contains(&p[d]) {
                    return Err(format!("bead outside the box: {p:?}"));
                }
            }
        }
        let total: f64 = self.density.iter().sum();
        if total < 0.0 {
            return Err("negative total density".into());
        }
        Ok(())
    }

    fn checksum(&self) -> f64 {
        self.pos.iter().map(|p| p[0] + p[1] + p[2]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_simmpi::comm::SelfComm;
    use spechpc_simmpi::threadcomm::ThreadWorld;

    #[test]
    fn mc_sweep_moves_beads_and_accepts_reasonably() {
        let mut k = SomaKernel::new(params(WorkloadClass::Test), 0, 1, 42);
        let c0 = k.checksum();
        let mut comm = SelfComm::new();
        k.step(&mut comm);
        k.validate().unwrap();
        assert_ne!(k.checksum(), c0, "beads must move");
        let rate = k.accepted as f64 / k.attempted as f64;
        assert!(rate > 0.2 && rate <= 1.0, "odd acceptance rate {rate}");
    }

    #[test]
    fn density_grid_accounts_for_every_bead() {
        let nranks = 3;
        let p = params(WorkloadClass::Test);
        let results = ThreadWorld::run(nranks, |rank, comm| {
            let mut k = SomaKernel::new(p, rank, nranks, 7);
            k.step(comm);
            (k.bead_count() as f64, k.density.iter().sum::<f64>())
        });
        let total_beads: f64 = results.iter().map(|(b, _)| b).sum();
        // After the allreduce every rank's grid holds the global count.
        for (_, d) in &results {
            assert!(
                (d - total_beads).abs() < 1e-9,
                "density total {d} != bead count {total_beads}"
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_checksum() {
        let p = params(WorkloadClass::Test);
        let run = || {
            let mut k = SomaKernel::new(p, 0, 1, 42);
            let mut comm = SelfComm::new();
            for _ in 0..3 {
                k.step(&mut comm);
            }
            k.checksum()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_diverge() {
        let p = params(WorkloadClass::Test);
        let run = |seed| {
            let mut k = SomaKernel::new(p, 0, 1, seed);
            let mut comm = SelfComm::new();
            k.step(&mut comm);
            k.checksum()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn signature_has_replicated_data_and_is_coolest() {
        let sig = Soma.signature(WorkloadClass::Tiny);
        sig.validate().unwrap();
        assert!(sig.replicated_fraction > 0.0, "soma replicates its field");
        assert_eq!(sig.heat, 0.0, "soma is the coolest code (§4.2.1)");
        assert!(sig.simd_fraction < 0.15, "soma is poorly vectorized");
        // Resident bytes grow with rank count — the §5.1.2 anomaly.
        assert!(sig.resident_bytes(1000) > 2.0 * sig.resident_bytes(1));
    }

    #[test]
    fn step_program_is_reduction_dominated() {
        let ct = ComputeTimes {
            per_rank: vec![0.01; 4],
            t_flops: vec![0.01; 4],
            t_mem: vec![0.0; 4],
            utilization: vec![1.0; 4],
            effective_mem_bytes: 0.0,
            effective_l3_bytes: 0.0,
            effective_l2_bytes: 0.0,
        };
        let progs = Soma.step_programs(WorkloadClass::Tiny, &ct);
        for p in &progs {
            assert_eq!(p.collective_count(), 2);
            // The density reduction moves the full replica.
            let big = p
                .ops
                .iter()
                .any(|o| matches!(o, Op::Allreduce { bytes } if *bytes > 10 << 20));
            assert!(big, "the density Allreduce must be tens of MiB");
        }
    }

    #[test]
    fn config_matches_table_1() {
        let cfg = Soma.config(WorkloadClass::Tiny);
        assert_eq!(cfg.param("Number of simulated polymers"), Some("14000000"));
        assert_eq!(cfg.steps, 200);
        let cfg = Soma.config(WorkloadClass::Small);
        assert_eq!(cfg.param("Number of simulated polymers"), Some("25000000"));
        assert_eq!(cfg.steps, 400);
    }
}
