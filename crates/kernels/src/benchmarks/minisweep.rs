//! `minisweep` — deterministic radiation-transport sweep
//! (SPEC id 21, C, ~17500 LOC, no collective).
//!
//! A successor to Sweep3D (paper Table 2): a KBA wavefront sweep over a
//! 3-D grid with many energy groups and angles, 2-D domain decomposition
//! in (x, y), and pipelining over z-blocks. The paper's key minisweep
//! finding (§4.1.5) is a *communication-serialization performance bug*:
//! the code posts its (large ⇒ synchronous-rendezvous) sends to the
//! downwind neighbor *before* the matching upwind receives; with open
//! boundary conditions only the most-downwind process in the chain can
//! receive right away, so the communication "ripples" through the
//! process chain, serializing it. Prime process counts (59, 61, …) force
//! a 1 × p decomposition — a maximal chain — and cost up to 75 % of the
//! performance, with `MPI_Recv` dominating the trace.
//!
//! [`Minisweep::step_programs`] reproduces the buggy send-first ordering
//! exactly; the real kernel ([`SweepKernel`]) implements the correct
//! upwind discrete-ordinates sweep (receive → sweep → send) whose
//! positivity and convergence invariants are tested.

use spechpc_simmpi::comm::Comm;
use spechpc_simmpi::program::{Op, Program};

use crate::common::benchmark::{BenchConfig, BenchMeta, Benchmark, Kernel};
use crate::common::config::WorkloadClass;
use crate::common::decomp::Grid2d;
use crate::common::model::ComputeTimes;
use crate::common::signature::WorkloadSignature;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepParams {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Energy groups.
    pub groups: usize,
    /// Angles per octant direction.
    pub angles: usize,
    /// Z-blocks for KBA pipelining.
    pub zblocks: usize,
    pub steps: u64,
}

pub fn params(class: WorkloadClass) -> SweepParams {
    match class {
        WorkloadClass::Test => SweepParams {
            nx: 12,
            ny: 12,
            nz: 8,
            groups: 2,
            angles: 2,
            zblocks: 2,
            steps: 4,
        },
        WorkloadClass::Tiny => SweepParams {
            nx: 96,
            ny: 64,
            nz: 64,
            groups: 64,
            angles: 32,
            zblocks: 8,
            steps: 40,
        },
        WorkloadClass::Small => SweepParams {
            nx: 128,
            ny: 64,
            nz: 64,
            groups: 64,
            angles: 32,
            zblocks: 8,
            steps: 80,
        },
        // minisweep ships no medium/large workloads (one of the three
        // codes without them); these extrapolations are only reachable
        // through the API, not the suite driver.
        WorkloadClass::Medium | WorkloadClass::Large => SweepParams {
            nx: 256,
            ny: 128,
            nz: 128,
            groups: 64,
            angles: 32,
            zblocks: 8,
            steps: 80,
        },
    }
}

/// The minisweep suite member.
#[derive(Debug, Default, Clone, Copy)]
pub struct Minisweep;

impl Benchmark for Minisweep {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "minisweep",
            spec_id: 21,
            language: "C",
            loc: 17500,
            collective: "—",
            numerics: "KBA wavefront sweep (Sweep3D successor)",
            domain: "Radiation transport in nuclear engineering",
            supports_medium_large: false,
        }
    }

    fn config(&self, class: WorkloadClass) -> BenchConfig {
        let p = params(class);
        BenchConfig {
            params: vec![
                ("Number of sweep iterations", p.steps.to_string()),
                (
                    "Global number of grid cells along the [X,Y,Z]-dimension",
                    format!("{{{},{},{}}}", p.nx, p.ny, p.nz),
                ),
                ("Total number of energy groups", p.groups.to_string()),
                (
                    "Number of angles for each octant direction",
                    p.angles.to_string(),
                ),
                (
                    "Number of sweep blocks used to tile the Z-dimension",
                    p.zblocks.to_string(),
                ),
            ],
            steps: p.steps,
        }
    }

    fn signature(&self, class: WorkloadClass) -> WorkloadSignature {
        let p = params(class);
        let cells = (p.nx * p.ny * p.nz) as f64;
        let work = cells * p.groups as f64 * (8 * p.angles) as f64;
        WorkloadSignature {
            // ~16 flops per cell-angle-group update.
            flops: work * 16.0,
            simd_fraction: 0.5,
            core_efficiency: 0.25,
            // Only the scalar flux and wavefront planes stream from
            // memory — the angular flux lives in cache-sized blocks.
            mem_bytes: cells * p.groups as f64 * 8.0 * 6.0,
            mem_bytes_per_rank: 0.0,
            l2_bytes: cells * p.groups as f64 * 8.0 * 20.0,
            l3_bytes: cells * p.groups as f64 * 8.0 * 10.0,
            // "Comparatively small data set" (§5.1): scalar flux +
            // source + cross-sections.
            working_set_bytes: cells * p.groups as f64 * 8.0 * 4.0,
            cache_exponent: 1.0,
            replicated_fraction: 0.0,
            heat: 0.8,
            steps: p.steps,
        }
    }

    /// The buggy send-before-receive KBA stage ordering of the original
    /// (paper §4.1.5): per octant and z-block, every rank posts its
    /// downwind sends first, then its upwind receives, then computes.
    fn step_programs(&self, class: WorkloadClass, compute: &ComputeTimes) -> Vec<Program> {
        let nranks = compute.per_rank.len();
        let p = params(class);
        let grid = Grid2d::new(p.nx, p.ny, nranks);
        let bz = p.nz / p.zblocks.max(1);
        let stages = 8 * p.zblocks;
        (0..nranks)
            .map(|r| {
                let mut prog = Program::new();
                let (lx, ly) = grid.tile_size(r);
                let [w, e, s, n] = grid.neighbors(r);
                let face_x = ly * bz * p.groups * p.angles * 8;
                let face_y = lx * bz * p.groups * p.angles * 8;
                let per_stage = compute.per_rank[r] / stages as f64;
                for octant in 0..8u32 {
                    // Sweep direction of this octant.
                    let (down_x, up_x) = if octant & 1 == 0 { (e, w) } else { (w, e) };
                    let (down_y, up_y) = if octant & 2 == 0 { (n, s) } else { (s, n) };
                    // KBA wavefront dependency per z-block: the upwind
                    // faces must arrive before the block is swept; the
                    // downwind faces are sent afterwards. Blocking
                    // rendezvous sends stall the sender until the
                    // downwind rank has caught up, so the wavefront
                    // serializes over the process chain — the §4.1.5
                    // ripple. Open boundaries: the most-upwind rank of
                    // the chain starts immediately, the most-downwind
                    // ranks accumulate massive MPI_Recv time. Prime
                    // process counts force a 1 × p chain and maximize
                    // the damage.
                    for zb in 0..p.zblocks as u32 {
                        let tag = octant * 100 + zb;
                        if let Some(u) = up_x {
                            prog.push(Op::recv(u, tag));
                        }
                        if let Some(u) = up_y {
                            prog.push(Op::recv(u, 1000 + tag));
                        }
                        prog.push(Op::compute(per_stage));
                        if let Some(d) = down_x {
                            prog.push(Op::send(d, tag, face_x));
                        }
                        if let Some(d) = down_y {
                            prog.push(Op::send(d, 1000 + tag, face_y));
                        }
                    }
                }
                prog
            })
            .collect()
    }

    fn make_kernel(
        &self,
        class: WorkloadClass,
        rank: usize,
        nranks: usize,
        _seed: u64,
    ) -> Box<dyn Kernel> {
        let p = params(class);
        Box::new(SweepKernel::new(p, rank, nranks))
    }
}

/// Real discrete-ordinates upwind sweep on the rank-local tile: one
/// representative angle per octant, `groups` energy groups folded into a
/// single group for the executable analog (the signature carries the
/// full cost).
pub struct SweepKernel {
    grid: Grid2d,
    rank: usize,
    lx: usize,
    ly: usize,
    nz: usize,
    /// Scalar flux accumulated over octants, `lx × ly × nz`.
    pub phi: Vec<f64>,
    /// Previous step's scalar flux (for convergence measurement).
    phi_prev: Vec<f64>,
    /// Total cross-section and source (uniform medium).
    sigma: f64,
    source: f64,
    /// Angular direction cosines (one representative angle).
    mu: (f64, f64, f64),
    pub steps_done: u64,
}

impl SweepKernel {
    pub fn new(p: SweepParams, rank: usize, nranks: usize) -> Self {
        let grid = Grid2d::new(p.nx, p.ny, nranks);
        let (lx, ly) = grid.tile_size(rank);
        SweepKernel {
            grid,
            rank,
            lx,
            ly,
            nz: p.nz,
            phi: vec![0.0; lx * ly * p.nz],
            phi_prev: vec![0.0; lx * ly * p.nz],
            sigma: 1.0,
            source: 1.0,
            mu: (0.5, 0.5, 0.5),
            steps_done: 0,
        }
    }

    /// The analytic infinite-medium bound: ψ ≤ S/σ per angle, so the
    /// 8-octant scalar flux is bounded by `8 · S/σ`.
    pub fn flux_bound(&self) -> f64 {
        8.0 * self.source / self.sigma
    }

    /// Sweep one octant: receive upwind faces, solve the upwind
    /// discretization cell by cell in sweep order, send downwind faces.
    #[allow(clippy::too_many_arguments)]
    fn sweep_octant(&mut self, comm: &mut dyn Comm, octant: u32, psi_acc: &mut [f64]) {
        let (lx, ly, nz) = (self.lx, self.ly, self.nz);
        let [wn, en, sn, nn] = self.grid.neighbors(self.rank);
        let pos_x = octant & 1 == 0;
        let pos_y = octant & 2 == 0;
        let pos_z = octant & 4 == 0;
        let (up_x, down_x) = if pos_x { (wn, en) } else { (en, wn) };
        let (up_y, down_y) = if pos_y { (sn, nn) } else { (nn, sn) };
        let (mx, my, mz) = self.mu;

        // Incoming faces: zero at open boundaries.
        let mut in_x = vec![0.0; ly * nz];
        let mut in_y = vec![0.0; lx * nz];
        if let Some(u) = up_x {
            comm.recv(u, octant * 2, &mut in_x);
        }
        if let Some(u) = up_y {
            comm.recv(u, octant * 2 + 1, &mut in_y);
        }

        // Sweep order per direction sign.
        let xs: Vec<usize> = if pos_x {
            (0..lx).collect()
        } else {
            (0..lx).rev().collect()
        };
        let ys: Vec<usize> = if pos_y {
            (0..ly).collect()
        } else {
            (0..ly).rev().collect()
        };
        let zs: Vec<usize> = if pos_z {
            (0..nz).collect()
        } else {
            (0..nz).rev().collect()
        };

        // ψ on the current wavefront: face storage updated in place.
        // face_x[y, z] = ψ entering the next cell along x, etc.
        let mut face_x = in_x;
        let mut face_y_all = vec![0.0; lx * nz];
        face_y_all.copy_from_slice(&in_y);
        let mut psi = vec![0.0; lx * ly * nz];
        let mut face_z = vec![0.0; lx * ly];

        for &z in &zs {
            for &y in &ys {
                for &x in &xs {
                    let fx = face_x[z * ly + y];
                    let fy = face_y_all[z * lx + x];
                    let fz = face_z[y * lx + x];
                    // Step (fully upwind) discretization: the outgoing
                    // face flux equals the cell flux, which makes the
                    // infinite-medium bound ψ ≤ S/σ hold exactly.
                    let num = self.source + mx * fx + my * fy + mz * fz;
                    let den = self.sigma + mx + my + mz;
                    let c = num / den;
                    psi[(z * ly + y) * lx + x] = c;
                    face_x[z * ly + y] = c;
                    face_y_all[z * lx + x] = c;
                    face_z[y * lx + x] = c;
                }
            }
        }
        for (acc, p) in psi_acc.iter_mut().zip(&psi) {
            *acc += p;
        }

        // Send outgoing faces downwind.
        if let Some(d) = down_x {
            comm.send(d, octant * 2, &face_x);
        }
        if let Some(d) = down_y {
            comm.send(d, octant * 2 + 1, &face_y_all);
        }
    }

    /// Scalar flux at a local grid point.
    pub fn flux_at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.phi[(z * self.ly + y) * self.lx + x]
    }

    /// Maximum change of the scalar flux in the last step.
    pub fn last_change(&self) -> f64 {
        self.phi
            .iter()
            .zip(&self.phi_prev)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Kernel for SweepKernel {
    fn step(&mut self, comm: &mut dyn Comm) {
        self.phi_prev.copy_from_slice(&self.phi);
        let mut acc = vec![0.0; self.lx * self.ly * self.nz];
        for octant in 0..8 {
            self.sweep_octant(comm, octant, &mut acc);
        }
        self.phi.copy_from_slice(&acc);
        self.steps_done += 1;
    }

    fn validate(&self) -> Result<(), String> {
        let bound = self.flux_bound() * (1.0 + 1e-12);
        for (i, &v) in self.phi.iter().enumerate() {
            if !v.is_finite() {
                return Err(format!("non-finite flux at {i}"));
            }
            if v < 0.0 {
                return Err(format!("negative flux {v} at {i}"));
            }
            if v > bound {
                return Err(format!(
                    "flux {v} exceeds the infinite-medium bound {bound}"
                ));
            }
        }
        Ok(())
    }

    fn checksum(&self) -> f64 {
        self.phi.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_simmpi::comm::SelfComm;
    use spechpc_simmpi::threadcomm::ThreadWorld;

    #[test]
    fn flux_positive_and_bounded_single_rank() {
        let mut k = SweepKernel::new(params(WorkloadClass::Test), 0, 1);
        let mut comm = SelfComm::new();
        for _ in 0..4 {
            k.step(&mut comm);
            k.validate().unwrap();
        }
        assert!(k.checksum() > 0.0);
    }

    #[test]
    fn sweep_converges_to_steady_state() {
        let mut k = SweepKernel::new(params(WorkloadClass::Test), 0, 1);
        let mut comm = SelfComm::new();
        k.step(&mut comm);
        k.step(&mut comm);
        let c1 = k.last_change();
        for _ in 0..6 {
            k.step(&mut comm);
        }
        let c2 = k.last_change();
        assert!(c2 <= c1, "sweep must converge: change {c1} then {c2}");
    }

    #[test]
    fn four_rank_native_sweep_matches_bound() {
        let p = params(WorkloadClass::Test);
        let sums = ThreadWorld::run(4, |rank, comm| {
            let mut k = SweepKernel::new(p, rank, 4);
            for _ in 0..3 {
                k.step(comm);
            }
            k.validate().unwrap();
            k.checksum()
        });
        assert!(sums.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn step_program_encodes_the_wavefront_dependency() {
        let ct = ComputeTimes {
            per_rank: vec![0.01; 6],
            t_flops: vec![0.01; 6],
            t_mem: vec![0.0; 6],
            utilization: vec![1.0; 6],
            effective_mem_bytes: 0.0,
            effective_l3_bytes: 0.0,
            effective_l2_bytes: 0.0,
        };
        let progs = Minisweep.step_programs(WorkloadClass::Tiny, &ct);
        // Each z-block stage of a mid-chain rank: Recv(upwind) …
        // Compute … Send(downwind) — the blocking rendezvous send then
        // stalls the rank until the downwind neighbor catches up.
        let prog = &progs[1];
        let first_recv = prog.ops.iter().position(|o| matches!(o, Op::Recv { .. }));
        let first_send = prog.ops.iter().position(|o| matches!(o, Op::Send { .. }));
        assert!(first_recv.unwrap() < first_send.unwrap());
        // The sweep compute is spread over all 64 stages.
        let computes = prog
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Compute { .. }))
            .count();
        assert_eq!(computes, 64);
        for p in &progs {
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn prime_counts_decompose_into_chains() {
        let p = params(WorkloadClass::Tiny);
        let g59 = Grid2d::new(p.nx, p.ny, 59);
        assert_eq!(g59.px.max(g59.py), 59, "59 must give a 1×59 chain");
        let g58 = Grid2d::new(p.nx, p.ny, 58);
        assert!(g58.px.max(g58.py) <= 29, "58 factors into 2×29");
    }

    #[test]
    fn faces_are_rendezvous_sized_at_tiny_scale() {
        // §4.1.5: rendezvous mode "due to large messages".
        let p = params(WorkloadClass::Tiny);
        let grid = Grid2d::new(p.nx, p.ny, 59);
        let (_, ly) = grid.tile_size(0);
        let bz = p.nz / p.zblocks;
        let face_x = ly * bz * p.groups * p.angles * 8;
        assert!(
            face_x > 64 * 1024,
            "face {face_x} B must exceed the eager threshold"
        );
    }

    #[test]
    fn config_matches_table_1() {
        let cfg = Minisweep.config(WorkloadClass::Tiny);
        assert_eq!(
            cfg.param("Global number of grid cells along the [X,Y,Z]-dimension"),
            Some("{96,64,64}")
        );
        assert_eq!(cfg.param("Total number of energy groups"), Some("64"));
        assert_eq!(cfg.steps, 40);
        assert!(!Minisweep.meta().supports_medium_large);
    }
}
