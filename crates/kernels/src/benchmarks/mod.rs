//! The nine SPEChpc 2021 benchmark analogs, in Table 1 order.

pub mod cloverleaf;
pub mod hpgmgfv;
pub mod lbm;
pub mod minisweep;
pub mod pot3d;
pub mod soma;
pub mod sph_exa;
pub mod tealeaf;
pub mod weather;
