//! `tealeaf` — linear heat conduction on a 2-D regular grid
//! (SPEC id 18, C, ~5400 LOC, collective: `MPI_Allreduce`).
//!
//! The original solves the linear heat-conduction equation with a
//! 5-point stencil and an implicit conjugate-gradient solver (paper
//! Table 2). It is one of the paper's strongly memory-bound,
//! bandwidth-saturating codes (§4.1.4) and — with only ~2 % of its work
//! vectorized — one of the most poorly vectorized (§4.1.3).
//!
//! This analog implements a real distributed CG solve of the backward-
//! Euler heat step `(I − α·dt·∇²) u = u_old` on a block-decomposed 2-D
//! grid with insulated (Neumann) boundaries: matrix-free 5-point
//! operator, 1-cell halo exchange per iteration via `MPI_Sendrecv`, and
//! the two dot-product `MPI_Allreduce`s of textbook CG. Total heat is
//! conserved exactly by the Neumann discretization — a tested invariant.

use spechpc_simmpi::comm::{Comm, ReduceOp};
use spechpc_simmpi::program::{Op, Program};

use crate::common::benchmark::{BenchConfig, BenchMeta, Benchmark, Kernel};
use crate::common::config::WorkloadClass;
use crate::common::decomp::Grid2d;
use crate::common::model::ComputeTimes;
use crate::common::signature::WorkloadSignature;

/// Per-class parameters. A simulated "step" is **one CG iteration** (the
/// unit the paper's per-iteration halo/reduction traffic refers to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TealeafParams {
    pub nx: usize,
    pub ny: usize,
    /// Outer (time) steps.
    pub outer_steps: u64,
    /// CG iterations per outer step (solver-bound in practice).
    pub cg_iters: u64,
}

impl TealeafParams {
    pub fn total_iters(&self) -> u64 {
        self.outer_steps * self.cg_iters
    }
}

pub fn params(class: WorkloadClass) -> TealeafParams {
    match class {
        WorkloadClass::Test => TealeafParams {
            nx: 48,
            ny: 48,
            outer_steps: 2,
            cg_iters: 30,
        },
        WorkloadClass::Tiny => TealeafParams {
            nx: 8192,
            ny: 8192,
            outer_steps: 5,
            cg_iters: 350,
        },
        WorkloadClass::Small => TealeafParams {
            nx: 16384,
            ny: 16384,
            outer_steps: 15,
            cg_iters: 350,
        },
        WorkloadClass::Medium => TealeafParams {
            nx: 49152,
            ny: 49152,
            outer_steps: 15,
            cg_iters: 350,
        },
        WorkloadClass::Large => TealeafParams {
            nx: 98304,
            ny: 98304,
            outer_steps: 15,
            cg_iters: 350,
        },
    }
}

/// The tealeaf suite member.
#[derive(Debug, Default, Clone, Copy)]
pub struct Tealeaf;

impl Benchmark for Tealeaf {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "tealeaf",
            spec_id: 18,
            language: "C",
            loc: 5400,
            collective: "Allreduce",
            numerics: "Linear heat conduction, 2D 5-point stencil, implicit CG",
            domain: "Physics / high energy physics",
            supports_medium_large: true,
        }
    }

    fn config(&self, class: WorkloadClass) -> BenchConfig {
        let p = params(class);
        BenchConfig {
            params: vec![
                (
                    "Cell count for {X,Y}-direction",
                    format!("{{{},{}}}", p.nx, p.ny),
                ),
                (
                    "Method to solve the linear system",
                    "Conjugate Gradient".into(),
                ),
                ("Solver convergence threshold", "1.0e-15".into()),
                ("Upper iterations limit per step", "5000".into()),
                ("Initial time-step", "0.004".into()),
                (
                    "Simulation end times (end time, end step)",
                    format!("{{{}, 100}}", p.outer_steps),
                ),
            ],
            steps: p.total_iters(),
        }
    }

    fn signature(&self, class: WorkloadClass) -> WorkloadSignature {
        let p = params(class);
        let n = (p.nx * p.ny) as f64;
        // One CG iteration: matvec (5-pt) + 2 dots + 3 axpys over ~6
        // resident arrays ⇒ ~80 B and ~14 flops per grid point.
        WorkloadSignature {
            flops: n * 14.0,
            simd_fraction: 0.05,
            core_efficiency: 0.5,
            mem_bytes: n * 80.0,
            mem_bytes_per_rank: 0.0,
            l2_bytes: n * 100.0,
            l3_bytes: n * 90.0,
            working_set_bytes: n * 6.0 * 8.0,
            cache_exponent: 3.0,
            replicated_fraction: 0.0,
            heat: 0.35,
            steps: p.total_iters(),
        }
    }

    fn step_programs(&self, class: WorkloadClass, compute: &ComputeTimes) -> Vec<Program> {
        let nranks = compute.per_rank.len();
        let p = params(class);
        let grid = Grid2d::new(p.nx, p.ny, nranks);
        (0..nranks)
            .map(|r| {
                let mut prog = Program::new();
                // Matvec with fresh halos. Tags name the direction of
                // data flow so sends and receives pair up correctly:
                // e.g. tag 0 = westward-moving edges (sent to the west
                // neighbor, received from the east neighbor).
                let (lx, ly) = grid.tile_size(r);
                let [w, e, s, n] = grid.neighbors(r);
                for (to, from, bytes, tag) in [
                    (w, e, ly * 8, 0u32),
                    (e, w, ly * 8, 1),
                    (s, n, lx * 8, 2),
                    (n, s, lx * 8, 3),
                ] {
                    match (to, from) {
                        (Some(to), Some(from)) => prog.push(Op::sendrecv(to, bytes, from, tag)),
                        (Some(to), None) => prog.push(Op::send(to, tag, bytes)),
                        (None, Some(from)) => prog.push(Op::recv(from, tag)),
                        (None, None) => {}
                    }
                }
                prog.push(Op::compute(compute.per_rank[r]));
                // The two CG dot products.
                prog.push(Op::allreduce(8));
                prog.push(Op::allreduce(8));
                prog
            })
            .collect()
    }

    fn make_kernel(
        &self,
        class: WorkloadClass,
        rank: usize,
        nranks: usize,
        _seed: u64,
    ) -> Box<dyn Kernel> {
        let p = params(class);
        Box::new(TealeafKernel::new(p, rank, nranks))
    }
}

/// Distributed CG solver for one implicit heat step per [`Kernel::step`].
pub struct TealeafKernel {
    grid: Grid2d,
    rank: usize,
    lx: usize,
    ly: usize,
    /// Temperature field with 1-cell halo, row-major `(ly+2) × (lx+2)`.
    u: Vec<f64>,
    /// Diffusion number α·dt/h².
    lambda: f64,
    cg_iters: u64,
    /// Residual norm of the last completed solve.
    pub last_residual: f64,
    /// Residual norm at the start of the last solve.
    pub first_residual: f64,
}

impl TealeafKernel {
    pub fn new(p: TealeafParams, rank: usize, nranks: usize) -> Self {
        let grid = Grid2d::new(p.nx, p.ny, nranks);
        let (lx, ly) = grid.tile_size(rank);
        let (x0, _, y0, _) = grid.tile(rank);
        let stride = lx + 2;
        let mut u = vec![0.0; stride * (ly + 2)];
        // A hot square in the global domain centre.
        for y in 0..ly {
            for x in 0..lx {
                let gx = x0 + x;
                let gy = y0 + y;
                let hot = gx > p.nx / 3 && gx < 2 * p.nx / 3 && gy > p.ny / 3 && gy < 2 * p.ny / 3;
                u[(y + 1) * stride + x + 1] = if hot { 100.0 } else { 0.1 };
            }
        }
        TealeafKernel {
            grid,
            rank,
            lx,
            ly,
            u,
            lambda: 0.5,
            cg_iters: p.cg_iters.min(200),
            last_residual: f64::INFINITY,
            first_residual: f64::INFINITY,
        }
    }

    fn stride(&self) -> usize {
        self.lx + 2
    }

    /// Exchange the 1-cell halo of `v` with the four neighbors; open
    /// boundaries mirror the edge cell (Neumann / insulated).
    fn halo(&self, v: &mut [f64], comm: &mut dyn Comm) {
        let stride = self.stride();
        let (lx, ly) = (self.lx, self.ly);
        let [wn, en, sn, nn] = self.grid.neighbors(self.rank);

        let col = |v: &[f64], x: usize| -> Vec<f64> {
            (0..ly).map(|y| v[(y + 1) * stride + x]).collect()
        };
        let set_col = |v: &mut [f64], x: usize, data: &[f64]| {
            for (y, d) in data.iter().enumerate() {
                v[(y + 1) * stride + x] = *d;
            }
        };
        // X direction. Tags name the data-flow direction: tag 1 =
        // eastward (my east edge → east neighbor), tag 0 = westward.
        // Sends are buffered, so send-first is deadlock-free; missing
        // neighbors mirror the edge (Neumann boundary).
        let west_edge = col(v, 1);
        let east_edge = col(v, lx);
        let mut west_in = vec![0.0; ly];
        let mut east_in = vec![0.0; ly];
        if let Some(en) = en {
            comm.send(en, 1, &east_edge);
        }
        if let Some(wn) = wn {
            comm.send(wn, 0, &west_edge);
        }
        if let Some(wn) = wn {
            comm.recv(wn, 1, &mut west_in);
        } else {
            west_in.copy_from_slice(&west_edge);
        }
        if let Some(en) = en {
            comm.recv(en, 0, &mut east_in);
        } else {
            east_in.copy_from_slice(&east_edge);
        }
        set_col(v, 0, &west_in);
        set_col(v, lx + 1, &east_in);

        // Y direction.
        let row =
            |v: &[f64], y: usize| -> Vec<f64> { v[y * stride + 1..y * stride + 1 + lx].to_vec() };
        let set_row = |v: &mut [f64], y: usize, data: &[f64]| {
            v[y * stride + 1..y * stride + 1 + lx].copy_from_slice(data);
        };
        let south_edge = row(v, 1);
        let north_edge = row(v, ly);
        let mut south_in = vec![0.0; lx];
        let mut north_in = vec![0.0; lx];
        if let Some(nn) = nn {
            comm.send(nn, 3, &north_edge);
        }
        if let Some(sn) = sn {
            comm.send(sn, 2, &south_edge);
        }
        if let Some(sn) = sn {
            comm.recv(sn, 3, &mut south_in);
        } else {
            south_in.copy_from_slice(&south_edge);
        }
        if let Some(nn) = nn {
            comm.recv(nn, 2, &mut north_in);
        } else {
            north_in.copy_from_slice(&north_edge);
        }
        set_row(v, 0, &south_in);
        set_row(v, ly + 1, &north_in);
    }

    /// Matrix-free operator `A v = (I − λ·∇²) v` with Neumann boundaries
    /// built into the halo mirroring. `v`'s halo must be fresh.
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        let stride = self.stride();
        for y in 1..=self.ly {
            for x in 1..=self.lx {
                let i = y * stride + x;
                let lap = v[i - 1] + v[i + 1] + v[i - stride] + v[i + stride] - 4.0 * v[i];
                out[i] = v[i] - self.lambda * lap;
            }
        }
    }

    fn dot(&self, a: &[f64], b: &[f64], comm: &mut dyn Comm) -> f64 {
        let stride = self.stride();
        let mut s = 0.0;
        for y in 1..=self.ly {
            for x in 1..=self.lx {
                s += a[y * stride + x] * b[y * stride + x];
            }
        }
        comm.allreduce_scalar(ReduceOp::Sum, s)
    }

    /// The core temperature field (halo stripped), row-major.
    pub fn core_field(&self) -> Vec<f64> {
        let stride = self.stride();
        let mut out = Vec::with_capacity(self.lx * self.ly);
        for y in 1..=self.ly {
            for x in 1..=self.lx {
                out.push(self.u[y * stride + x]);
            }
        }
        out
    }

    /// Total heat on the local tile.
    pub fn local_heat(&self) -> f64 {
        let stride = self.stride();
        let mut s = 0.0;
        for y in 1..=self.ly {
            for x in 1..=self.lx {
                s += self.u[y * stride + x];
            }
        }
        s
    }
}

impl Kernel for TealeafKernel {
    /// One implicit heat step: solve `(I − λ∇²) u_new = u` by CG.
    fn step(&mut self, comm: &mut dyn Comm) {
        let size = self.u.len();
        let b = self.u.clone();
        let mut x = self.u.clone();
        let mut r = vec![0.0; size];
        let mut p = vec![0.0; size];
        let mut ap = vec![0.0; size];
        let stride = self.stride();

        // r = b − A x, p = r.
        self.halo(&mut x, comm);
        self.apply(&x, &mut ap);
        for y in 1..=self.ly {
            for xx in 1..=self.lx {
                let i = y * stride + xx;
                r[i] = b[i] - ap[i];
                p[i] = r[i];
            }
        }
        let mut rr = self.dot(&r, &r, comm);
        self.first_residual = rr.sqrt();

        for _ in 0..self.cg_iters {
            if rr.sqrt() < 1e-15 {
                break;
            }
            self.halo(&mut p, comm);
            self.apply(&p, &mut ap);
            let pap = self.dot(&p, &ap, comm);
            if pap <= 0.0 {
                break; // operator is SPD; this only fires at round-off
            }
            let alpha = rr / pap;
            for y in 1..=self.ly {
                for xx in 1..=self.lx {
                    let i = y * stride + xx;
                    x[i] += alpha * p[i];
                    r[i] -= alpha * ap[i];
                }
            }
            let rr_new = self.dot(&r, &r, comm);
            let beta = rr_new / rr;
            rr = rr_new;
            for y in 1..=self.ly {
                for xx in 1..=self.lx {
                    let i = y * stride + xx;
                    p[i] = r[i] + beta * p[i];
                }
            }
        }
        self.last_residual = rr.sqrt();
        self.u = x;
    }

    fn validate(&self) -> Result<(), String> {
        if !self.last_residual.is_finite() {
            return Err("residual is not finite".into());
        }
        if self.last_residual > self.first_residual {
            return Err(format!(
                "CG diverged: {} → {}",
                self.first_residual, self.last_residual
            ));
        }
        let stride = self.stride();
        for y in 1..=self.ly {
            for x in 1..=self.lx {
                let v = self.u[y * stride + x];
                if !v.is_finite() {
                    return Err(format!("non-finite temperature at ({x},{y})"));
                }
            }
        }
        Ok(())
    }

    fn checksum(&self) -> f64 {
        self.local_heat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_simmpi::comm::SelfComm;

    #[test]
    fn cg_reduces_residual_dramatically() {
        let mut k = TealeafKernel::new(params(WorkloadClass::Test), 0, 1);
        let mut comm = SelfComm::new();
        k.step(&mut comm);
        assert!(
            k.last_residual < 1e-6 * k.first_residual.max(1e-30),
            "CG barely converged: {} → {}",
            k.first_residual,
            k.last_residual
        );
        k.validate().unwrap();
    }

    #[test]
    fn heat_is_conserved_by_neumann_step() {
        let mut k = TealeafKernel::new(params(WorkloadClass::Test), 0, 1);
        let h0 = k.local_heat();
        let mut comm = SelfComm::new();
        for _ in 0..3 {
            k.step(&mut comm);
        }
        let h1 = k.local_heat();
        assert!((h1 - h0).abs() / h0 < 1e-8, "heat drift: {h0} → {h1}");
    }

    #[test]
    fn diffusion_smooths_the_field() {
        let mut k = TealeafKernel::new(params(WorkloadClass::Test), 0, 1);
        let spread = |k: &TealeafKernel| {
            let stride = k.stride();
            let core: Vec<f64> = (1..=k.ly)
                .flat_map(|y| (1..=k.lx).map(move |x| (x, y)))
                .map(|(x, y)| k.u[y * stride + x])
                .collect();
            let mx = core.iter().copied().fold(f64::MIN, f64::max);
            let mn = core.iter().copied().fold(f64::MAX, f64::min);
            mx - mn
        };
        let s0 = spread(&k);
        let mut comm = SelfComm::new();
        for _ in 0..5 {
            k.step(&mut comm);
        }
        assert!(spread(&k) < s0, "diffusion must smooth the hot square");
    }

    #[test]
    fn operator_is_symmetric() {
        // <Av, w> == <v, Aw> on a single rank (required for CG).
        let k = TealeafKernel::new(params(WorkloadClass::Test), 0, 1);
        let size = k.u.len();
        let stride = k.stride();
        let mut v = vec![0.0; size];
        let mut w = vec![0.0; size];
        for y in 1..=k.ly {
            for x in 1..=k.lx {
                v[y * stride + x] = ((x * 31 + y * 17) % 13) as f64 - 6.0;
                w[y * stride + x] = ((x * 7 + y * 41) % 11) as f64 - 5.0;
            }
        }
        let mut comm = SelfComm::new();
        let (mut av, mut aw) = (vec![0.0; size], vec![0.0; size]);
        let mut vh = v.clone();
        k.halo(&mut vh, &mut comm);
        k.apply(&vh, &mut av);
        let mut wh = w.clone();
        k.halo(&mut wh, &mut comm);
        k.apply(&wh, &mut aw);
        let d1: f64 = av.iter().zip(&w).map(|(a, b)| a * b).sum();
        let d2: f64 = v.iter().zip(&aw).map(|(a, b)| a * b).sum();
        assert!((d1 - d2).abs() < 1e-9 * d1.abs().max(1.0), "{d1} vs {d2}");
    }

    #[test]
    fn signature_is_strongly_memory_bound() {
        let sig = Tealeaf.signature(WorkloadClass::Tiny);
        sig.validate().unwrap();
        assert!(sig.intensity() < 0.5, "intensity {}", sig.intensity());
        assert!(sig.simd_fraction < 0.1, "tealeaf is poorly vectorized");
    }

    #[test]
    fn step_program_has_two_dot_reductions() {
        let ct = ComputeTimes {
            per_rank: vec![0.01; 9],
            t_flops: vec![0.0; 9],
            t_mem: vec![0.01; 9],
            utilization: vec![0.2; 9],
            effective_mem_bytes: 0.0,
            effective_l3_bytes: 0.0,
            effective_l2_bytes: 0.0,
        };
        let progs = Tealeaf.step_programs(WorkloadClass::Tiny, &ct);
        for p in &progs {
            assert_eq!(
                p.ops
                    .iter()
                    .filter(|o| matches!(o, Op::Allreduce { .. }))
                    .count(),
                2
            );
            assert!(p.validate().is_ok());
        }
        // Interior ranks exchange four halos (rank 4 in a 3×3 grid).
        let interior = &progs[4];
        assert_eq!(
            interior
                .ops
                .iter()
                .filter(|o| matches!(o, Op::Sendrecv { .. }))
                .count(),
            4
        );
    }

    #[test]
    fn config_matches_table_1() {
        let cfg = Tealeaf.config(WorkloadClass::Tiny);
        assert_eq!(
            cfg.param("Cell count for {X,Y}-direction"),
            Some("{8192,8192}")
        );
        assert_eq!(
            cfg.param("Method to solve the linear system"),
            Some("Conjugate Gradient")
        );
    }

    #[test]
    fn two_rank_native_run_conserves_heat() {
        use spechpc_simmpi::threadcomm::ThreadWorld;
        let p = params(WorkloadClass::Test);
        let heats = ThreadWorld::run(2, |rank, comm| {
            let mut k = TealeafKernel::new(p, rank, 2);
            let h0 = k.local_heat();
            for _ in 0..2 {
                k.step(comm);
            }
            k.validate().unwrap();
            (h0, k.local_heat())
        });
        let before: f64 = heats.iter().map(|(a, _)| a).sum();
        let after: f64 = heats.iter().map(|(_, b)| b).sum();
        assert!(
            (after - before).abs() / before < 1e-8,
            "global heat drift {before} → {after}"
        );
    }
}
