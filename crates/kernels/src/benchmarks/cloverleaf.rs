//! `cloverleaf` — compressible Euler equations on a 2-D Cartesian grid
//! (SPEC id 19, Fortran, ~12500 LOC, collective: `MPI_Allreduce`).
//!
//! The original solves the compressible Euler equations with an explicit
//! second-order method on a staggered grid (paper Table 2). In the study
//! it is strongly memory-bound and bandwidth-saturating on the node
//! (§4.1.4), well vectorized (§4.1.3), and its multi-node scaling is the
//! pure "communication overhead, no cache effect" case D (§5.1): its
//! working set is far too large to ever become cache-resident.
//!
//! The analog implements a real first-order conservative finite-volume
//! scheme (local Lax-Friedrichs fluxes) for the 2-D Euler equations with
//! an ideal-gas EOS on a block-decomposed grid: per-step halo exchanges
//! for the conserved fields and the global `MPI_Allreduce` minimum for
//! the CFL time step. Mass and total energy are conserved exactly by the
//! flux form on the periodic domain — tested invariants.

use spechpc_simmpi::comm::{Comm, ReduceOp};
use spechpc_simmpi::program::{Op, Program};

use crate::common::benchmark::{BenchConfig, BenchMeta, Benchmark, Kernel};
use crate::common::config::WorkloadClass;
use crate::common::decomp::Grid2d;
use crate::common::model::ComputeTimes;
use crate::common::signature::WorkloadSignature;

const GAMMA: f64 = 1.4;
/// Conserved variables per cell: ρ, ρu, ρv, E.
const NVARS: usize = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloverParams {
    pub nx: usize,
    pub ny: usize,
    pub steps: u64,
}

pub fn params(class: WorkloadClass) -> CloverParams {
    match class {
        WorkloadClass::Test => CloverParams {
            nx: 48,
            ny: 48,
            steps: 10,
        },
        WorkloadClass::Tiny => CloverParams {
            nx: 15360,
            ny: 15360,
            steps: 400,
        },
        WorkloadClass::Small => CloverParams {
            nx: 61440,
            ny: 30720,
            steps: 500,
        },
        WorkloadClass::Medium => CloverParams {
            nx: 122880,
            ny: 61440,
            steps: 500,
        },
        WorkloadClass::Large => CloverParams {
            nx: 245760,
            ny: 122880,
            steps: 500,
        },
    }
}

/// The cloverleaf suite member.
#[derive(Debug, Default, Clone, Copy)]
pub struct Cloverleaf;

impl Benchmark for Cloverleaf {
    fn meta(&self) -> BenchMeta {
        BenchMeta {
            name: "cloverleaf",
            spec_id: 19,
            language: "Fortran",
            loc: 12500,
            collective: "Allreduce",
            numerics: "Compressible Euler, 2D Cartesian, explicit 2nd order",
            domain: "Physics / high energy physics",
            supports_medium_large: true,
        }
    }

    fn config(&self, class: WorkloadClass) -> BenchConfig {
        let p = params(class);
        BenchConfig {
            params: vec![
                (
                    "[density, energy] in two ideal gas states",
                    "{0.2,1},{1,2.5}".into(),
                ),
                (
                    "Logical mesh size for {X,Y}-direction",
                    format!("{{{},{}}}", p.nx, p.ny),
                ),
                (
                    "Physical mesh size (Xmin,Ymin,Xmax,Ymax)",
                    "{0,0,10,10}".into(),
                ),
                ("Timestep (initial, rise, max)", "{0.04, 1.5, 0.04}".into()),
                (
                    "Simulation end times (end time, end step)",
                    format!("{{0.5, {}}}", p.steps),
                ),
            ],
            steps: p.steps,
        }
    }

    fn signature(&self, class: WorkloadClass) -> WorkloadSignature {
        let p = params(class);
        let n = (p.nx * p.ny) as f64;
        // One hydro step sweeps ~15 field arrays over several kernels
        // (PdV, fluxes, advection in two directions): ~350 B and ~120
        // flops per cell per step.
        WorkloadSignature {
            flops: n * 120.0,
            simd_fraction: 0.95,
            core_efficiency: 0.45,
            mem_bytes: n * 350.0,
            mem_bytes_per_rank: 0.0,
            l2_bytes: n * 430.0,
            l3_bytes: n * 390.0,
            working_set_bytes: n * 15.0 * 8.0,
            cache_exponent: 3.0,
            replicated_fraction: 0.0,
            heat: 0.45,
            steps: p.steps,
        }
    }

    fn step_programs(&self, class: WorkloadClass, compute: &ComputeTimes) -> Vec<Program> {
        let nranks = compute.per_rank.len();
        let p = params(class);
        let grid = Grid2d::new(p.nx, p.ny, nranks);
        (0..nranks)
            .map(|r| {
                let mut prog = Program::new();
                let (lx, ly) = grid.tile_size(r);
                let [w, e, s, n] = grid.neighbors(r);
                // Three halo-exchange rounds per step (density/energy,
                // velocities, mass fluxes), two fields each.
                for round in 0..3u32 {
                    for (to, from, bytes, dir) in [
                        (w, e, ly * 8 * 2, 0u32),
                        (e, w, ly * 8 * 2, 1),
                        (s, n, lx * 8 * 2, 2),
                        (n, s, lx * 8 * 2, 3),
                    ] {
                        let tag = round * 4 + dir;
                        match (to, from) {
                            (Some(to), Some(from)) => prog.push(Op::sendrecv(to, bytes, from, tag)),
                            (Some(to), None) => prog.push(Op::send(to, tag, bytes)),
                            (None, Some(from)) => prog.push(Op::recv(from, tag)),
                            (None, None) => {}
                        }
                    }
                    // A third of the step's compute per round.
                    prog.push(Op::compute(compute.per_rank[r] / 3.0));
                }
                // CFL time-step reduction.
                prog.push(Op::allreduce(8));
                prog
            })
            .collect()
    }

    fn make_kernel(
        &self,
        class: WorkloadClass,
        rank: usize,
        nranks: usize,
        _seed: u64,
    ) -> Box<dyn Kernel> {
        let p = params(class);
        Box::new(CloverKernel::new(p, rank, nranks))
    }
}

/// Real 2-D Euler finite-volume kernel (local Lax-Friedrichs), periodic
/// global domain, conserved-variable form.
pub struct CloverKernel {
    grid: Grid2d,
    rank: usize,
    lx: usize,
    ly: usize,
    /// Conserved fields with 1-cell halo: `q[v][(ly+2) × (lx+2)]`.
    q: Vec<Vec<f64>>,
    qn: Vec<Vec<f64>>,
    /// Fixed CFL-safe time step (recomputed each step via allreduce).
    pub dt: f64,
    steps_done: u64,
}

impl CloverKernel {
    pub fn new(p: CloverParams, rank: usize, nranks: usize) -> Self {
        let grid = Grid2d::new(p.nx, p.ny, nranks);
        let (lx, ly) = grid.tile_size(rank);
        let (x0, _, y0, _) = grid.tile(rank);
        let stride = lx + 2;
        let size = stride * (ly + 2);
        let mut q = vec![vec![0.0; size]; NVARS];
        // Table 1's two ideal-gas states: a dense energetic square
        // embedded in a light background.
        for y in 0..ly {
            for x in 0..lx {
                let gx = x0 + x;
                let gy = y0 + y;
                let inside = gx < p.nx / 2 && gy < p.ny / 2;
                let (rho, e) = if inside { (1.0, 2.5) } else { (0.2, 1.0) };
                let i = (y + 1) * stride + x + 1;
                q[0][i] = rho;
                q[1][i] = 0.0;
                q[2][i] = 0.0;
                q[3][i] = rho * e; // total energy (no kinetic part yet)
            }
        }
        let qn = q.clone();
        CloverKernel {
            grid,
            rank,
            lx,
            ly,
            q,
            qn,
            dt: 0.0,
            steps_done: 0,
        }
    }

    fn stride(&self) -> usize {
        self.lx + 2
    }

    /// Periodic halo exchange for all conserved fields.
    fn halo(&mut self, comm: &mut dyn Comm) {
        let stride = self.stride();
        let (lx, ly) = (self.lx, self.ly);
        let [wn, en, sn, nn] = self.grid.neighbors_periodic(self.rank);
        for v in 0..NVARS {
            let base = v as u32 * 4;
            // X direction.
            let east: Vec<f64> = (0..ly).map(|y| self.q[v][(y + 1) * stride + lx]).collect();
            let west: Vec<f64> = (0..ly).map(|y| self.q[v][(y + 1) * stride + 1]).collect();
            let mut west_in = vec![0.0; ly];
            let mut east_in = vec![0.0; ly];
            comm.sendrecv(en, &east, wn, &mut west_in, base);
            comm.sendrecv(wn, &west, en, &mut east_in, base + 1);
            for y in 0..ly {
                self.q[v][(y + 1) * stride] = west_in[y];
                self.q[v][(y + 1) * stride + lx + 1] = east_in[y];
            }
            // Y direction (full width including x halos).
            let north: Vec<f64> = self.q[v][ly * stride..(ly + 1) * stride].to_vec();
            let south: Vec<f64> = self.q[v][stride..2 * stride].to_vec();
            let mut south_in = vec![0.0; stride];
            let mut north_in = vec![0.0; stride];
            comm.sendrecv(nn, &north, sn, &mut south_in, base + 2);
            comm.sendrecv(sn, &south, nn, &mut north_in, base + 3);
            self.q[v][..stride].copy_from_slice(&south_in);
            self.q[v][(ly + 1) * stride..].copy_from_slice(&north_in);
        }
    }

    /// Pressure and sound speed from the conserved state.
    fn pressure(rho: f64, mx: f64, my: f64, e: f64) -> f64 {
        let kinetic = 0.5 * (mx * mx + my * my) / rho;
        (GAMMA - 1.0) * (e - kinetic).max(1e-12)
    }

    /// Local max signal speed for the CFL condition.
    fn max_speed(&self) -> f64 {
        let stride = self.stride();
        let mut s: f64 = 0.0;
        for y in 1..=self.ly {
            for x in 1..=self.lx {
                let i = y * stride + x;
                let rho = self.q[0][i];
                let u = self.q[1][i] / rho;
                let v = self.q[2][i] / rho;
                let p = Self::pressure(rho, self.q[1][i], self.q[2][i], self.q[3][i]);
                let c = (GAMMA * p / rho).sqrt();
                s = s.max(u.abs() + c).max(v.abs() + c);
            }
        }
        s
    }

    /// Physical flux in the x direction (y by symmetry/swap).
    fn flux_x(rho: f64, mx: f64, my: f64, e: f64) -> [f64; 4] {
        let u = mx / rho;
        let p = Self::pressure(rho, mx, my, e);
        [mx, mx * u + p, my * u, (e + p) * u]
    }

    /// The core density field (halo stripped), row-major.
    pub fn density_field(&self) -> Vec<f64> {
        let stride = self.stride();
        let mut out = Vec::with_capacity(self.lx * self.ly);
        for y in 1..=self.ly {
            for x in 1..=self.lx {
                out.push(self.q[0][y * stride + x]);
            }
        }
        out
    }

    /// Total mass and energy of the local tile.
    pub fn local_conserved(&self) -> (f64, f64) {
        let stride = self.stride();
        let (mut m, mut e) = (0.0, 0.0);
        for y in 1..=self.ly {
            for x in 1..=self.lx {
                let i = y * stride + x;
                m += self.q[0][i];
                e += self.q[3][i];
            }
        }
        (m, e)
    }
}

impl Kernel for CloverKernel {
    fn step(&mut self, comm: &mut dyn Comm) {
        // CFL time-step: global minimum over all ranks (Table 1's
        // "timestep frequency" control; the suite's Allreduce).
        let smax = self.max_speed();
        let local_dt = 0.4 / smax.max(1e-12);
        self.dt = comm.allreduce_scalar(ReduceOp::Min, local_dt).min(0.04);

        self.halo(comm);
        let stride = self.stride();
        let dt_h = self.dt; // h = 1
        let lam = 2.0; // LLF dissipation ≥ max signal speed (c ≈ 1.2)

        for y in 1..=self.ly {
            for x in 1..=self.lx {
                let i = y * stride + x;
                let get = |q: &Vec<Vec<f64>>, j: usize| -> [f64; 4] {
                    [q[0][j], q[1][j], q[2][j], q[3][j]]
                };
                let c = get(&self.q, i);
                let wx = get(&self.q, i - 1);
                let ex = get(&self.q, i + 1);
                let sy = get(&self.q, i - stride);
                let ny = get(&self.q, i + stride);

                // Swap (mx ↔ my) turns the x-flux into the y-flux.
                let swap = |q: [f64; 4]| [q[0], q[2], q[1], q[3]];
                let fc = Self::flux_x(c[0], c[1], c[2], c[3]);
                let fw = Self::flux_x(wx[0], wx[1], wx[2], wx[3]);
                let fe = Self::flux_x(ex[0], ex[1], ex[2], ex[3]);
                let gc_s = Self::flux_x(c[0], c[2], c[1], c[3]);
                let gs_s = Self::flux_x(sy[0], sy[2], sy[1], sy[3]);
                let gn_s = Self::flux_x(ny[0], ny[2], ny[1], ny[3]);
                let gc = swap(gc_s);
                let gs = swap(gs_s);
                let gn = swap(gn_s);

                for v in 0..NVARS {
                    // Local Lax–Friedrichs: centred flux + dissipation.
                    let fl = 0.5 * (fw[v] + fc[v]) - 0.5 * lam * (c[v] - wx[v]);
                    let fr = 0.5 * (fc[v] + fe[v]) - 0.5 * lam * (ex[v] - c[v]);
                    let gl = 0.5 * (gs[v] + gc[v]) - 0.5 * lam * (c[v] - sy[v]);
                    let gr = 0.5 * (gc[v] + gn[v]) - 0.5 * lam * (ny[v] - c[v]);
                    self.qn[v][i] = c[v] - dt_h * (fr - fl) - dt_h * (gr - gl);
                }
            }
        }
        std::mem::swap(&mut self.q, &mut self.qn);
        self.steps_done += 1;
    }

    fn validate(&self) -> Result<(), String> {
        let stride = self.stride();
        for y in 1..=self.ly {
            for x in 1..=self.lx {
                let i = y * stride + x;
                let rho = self.q[0][i];
                if !rho.is_finite() || rho <= 0.0 {
                    return Err(format!("bad density {rho} at ({x},{y})"));
                }
                let p = Self::pressure(rho, self.q[1][i], self.q[2][i], self.q[3][i]);
                if !p.is_finite() || p <= 0.0 {
                    return Err(format!("bad pressure {p} at ({x},{y})"));
                }
            }
        }
        Ok(())
    }

    fn checksum(&self) -> f64 {
        let (m, e) = self.local_conserved();
        m + e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_simmpi::comm::SelfComm;
    use spechpc_simmpi::threadcomm::ThreadWorld;

    #[test]
    fn mass_and_energy_conserved_single_rank() {
        let mut k = CloverKernel::new(params(WorkloadClass::Test), 0, 1);
        let (m0, e0) = k.local_conserved();
        let mut comm = SelfComm::new();
        for _ in 0..10 {
            k.step(&mut comm);
        }
        let (m1, e1) = k.local_conserved();
        assert!((m1 - m0).abs() / m0 < 1e-12, "mass drift {m0} → {m1}");
        assert!((e1 - e0).abs() / e0 < 1e-12, "energy drift {e0} → {e1}");
        k.validate().unwrap();
    }

    #[test]
    fn shock_spreads_momentum() {
        // The discontinuous initial state must start moving.
        let mut k = CloverKernel::new(params(WorkloadClass::Test), 0, 1);
        let mut comm = SelfComm::new();
        for _ in 0..5 {
            k.step(&mut comm);
        }
        let stride = k.stride();
        let mom: f64 = (1..=k.ly)
            .flat_map(|y| (1..=k.lx).map(move |x| y * stride + x))
            .map(|i| k.q[1][i].abs() + k.q[2][i].abs())
            .sum();
        assert!(mom > 0.0, "momentum must develop at the interface");
    }

    #[test]
    fn cfl_dt_is_positive_and_bounded() {
        let mut k = CloverKernel::new(params(WorkloadClass::Test), 0, 1);
        let mut comm = SelfComm::new();
        k.step(&mut comm);
        assert!(k.dt > 0.0 && k.dt <= 0.04, "dt = {}", k.dt);
    }

    #[test]
    fn four_rank_native_run_conserves_globally() {
        let p = params(WorkloadClass::Test);
        let results = ThreadWorld::run(4, |rank, comm| {
            let mut k = CloverKernel::new(p, rank, 4);
            let before = k.local_conserved();
            for _ in 0..5 {
                k.step(comm);
            }
            k.validate().unwrap();
            (before, k.local_conserved())
        });
        let m0: f64 = results.iter().map(|((m, _), _)| m).sum();
        let m1: f64 = results.iter().map(|(_, (m, _))| m).sum();
        let e0: f64 = results.iter().map(|((_, e), _)| e).sum();
        let e1: f64 = results.iter().map(|(_, (_, e))| e).sum();
        assert!((m1 - m0).abs() / m0 < 1e-12, "global mass {m0} → {m1}");
        assert!((e1 - e0).abs() / e0 < 1e-12, "global energy {e0} → {e1}");
    }

    #[test]
    fn signature_memory_bound_and_well_vectorized() {
        let sig = Cloverleaf.signature(WorkloadClass::Tiny);
        sig.validate().unwrap();
        assert!(sig.intensity() < 0.5);
        assert!(sig.simd_fraction > 0.9);
        // Working set ~28 GB: never cache-resident (scaling case D).
        assert!(sig.working_set_bytes > 20e9);
    }

    #[test]
    fn step_program_has_single_dt_reduction() {
        let ct = ComputeTimes {
            per_rank: vec![0.01; 6],
            t_flops: vec![0.0; 6],
            t_mem: vec![0.01; 6],
            utilization: vec![0.2; 6],
            effective_mem_bytes: 0.0,
            effective_l3_bytes: 0.0,
            effective_l2_bytes: 0.0,
        };
        let progs = Cloverleaf.step_programs(WorkloadClass::Tiny, &ct);
        for p in &progs {
            assert_eq!(p.collective_count(), 1);
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn config_matches_table_1() {
        let cfg = Cloverleaf.config(WorkloadClass::Tiny);
        assert_eq!(
            cfg.param("Logical mesh size for {X,Y}-direction"),
            Some("{15360,15360}")
        );
        let cfg = Cloverleaf.config(WorkloadClass::Small);
        assert_eq!(
            cfg.param("Logical mesh size for {X,Y}-direction"),
            Some("{61440,30720}")
        );
    }
}
