//! # spechpc — SPEChpc 2021 performance & energy case-study reproduction
//!
//! Facade crate re-exporting the full framework built for reproducing
//! *"SPEChpc 2021 Benchmarks on Ice Lake and Sapphire Rapids Infiniband
//! Clusters: A Performance and Energy Case Study"* (SC'23 workshops):
//!
//! * [`machine`] — calibrated hardware models of the two clusters,
//! * [`simmpi`] — discrete-event MPI simulator + native thread comm,
//! * [`kernels`] — executable analogs of all nine suite benchmarks,
//! * [`power`] — RAPL-style power/energy models, Z-plots, race-to-idle,
//! * [`analysis`] — roofline, counters, speedup and scaling classifiers,
//! * [`harness`] — SPEC-like run rules and per-figure experiment drivers.
//!
//! ## Quickstart
//!
//! ```
//! use spechpc::prelude::*;
//!
//! let cluster = presets::cluster_a();
//! let runner = SimRunner::new(RunConfig::default()
//!     .with_repetitions(1)
//!     .with_trace(false));
//! let bench = benchmark_by_name("tealeaf").unwrap();
//! let r = runner.run(&cluster, &*bench, WorkloadClass::Tiny, 72).unwrap();
//! assert!(r.runtime_s > 0.0);
//! println!("tealeaf tiny on a {} node: {:.1} s, {:.0} GB/s, {:.0} W",
//!          r.cluster, r.runtime_s, r.counters.mem_bandwidth(),
//!          r.power.total());
//! ```

pub use spechpc_analysis as analysis;
pub use spechpc_harness as harness;
pub use spechpc_kernels as kernels;
pub use spechpc_machine as machine;
pub use spechpc_power as power;
pub use spechpc_simmpi as simmpi;

/// The common imports for working with the framework.
pub mod prelude {
    pub use spechpc_analysis::counters::CounterSample;
    pub use spechpc_analysis::roofline::Roofline;
    pub use spechpc_analysis::scaling::{classify_scaling, ScalingCase, ScalingEvidence};
    pub use spechpc_analysis::speedup::{parallel_efficiency, SpeedupCurve};
    pub use spechpc_analysis::stats::RunStats;
    pub use spechpc_harness::api::{
        ApiError, RunRequest, RunResponse, SuiteRequest, SuiteResponse,
    };
    pub use spechpc_harness::cache::{RunCache, RunKey};
    pub use spechpc_harness::error::HarnessError;
    pub use spechpc_harness::exec::{ExecConfig, Executor, GridFailure, GridReport, RunSpec};
    pub use spechpc_harness::json::{parse_json, Json};
    pub use spechpc_harness::runner::{RunConfig, RunResult, SimRunner};
    pub use spechpc_harness::serve::{ServeConfig, Server, ShutdownHandle};
    pub use spechpc_harness::suite::{Suite, SuiteReport};
    pub use spechpc_kernels::common::benchmark::{Benchmark, Kernel};
    pub use spechpc_kernels::common::config::WorkloadClass;
    pub use spechpc_kernels::common::model::NodeModel;
    pub use spechpc_kernels::registry::{all_benchmarks, benchmark_by_name, BENCHMARK_NAMES};
    pub use spechpc_machine::cluster::ClusterSpec;
    pub use spechpc_machine::presets;
    pub use spechpc_power::energy::EnergyBreakdown;
    pub use spechpc_power::rapl::RaplModel;
    pub use spechpc_power::zplot::{ZPlot, ZPoint};
    pub use spechpc_simmpi::comm::{Comm, ReduceOp};
    pub use spechpc_simmpi::faults::{FaultEvent, FaultPlan, RankSet};
    pub use spechpc_simmpi::threadcomm::ThreadWorld;
    pub use spechpc_simmpi::trace::EventKind;
}
