//! Deterministic discrete-event engine executing one [`Program`] per rank.
//!
//! ## Semantics
//!
//! * **Point-to-point matching** is FIFO per `(source, destination, tag)`
//!   channel (MPI non-overtaking rule).
//! * **Eager protocol** (below the interconnect's threshold): a send
//!   completes locally after the sender overhead `o`; the message arrives
//!   at `post + wire_time`; the receive completes at
//!   `max(recv_post, arrival)`.
//! * **Synchronous rendezvous** (at/above the threshold): sender and
//!   receiver hand-shake; the transfer starts at
//!   `max(send_post, recv_post)` and both sides complete at
//!   `start + wire_time`. This is the regime responsible for the
//!   minisweep serialization "ripple" of the paper (§4.1.5).
//! * **Collectives** are globally ordered per rank-local sequence number;
//!   every rank must execute the same sequence (mismatches are detected
//!   and reported). A collective completes for all ranks at
//!   `max(entry times) + algorithmic cost`.
//! * **Deadlocks** (cyclic rendezvous sends, missing matches) are
//!   detected: when no rank can make progress and not all are done, the
//!   engine reports which rank is stuck on which operation.
//!
//! ## Scheduling
//!
//! The engine is **event-driven**: runnable ranks live on a ready
//! queue, and a blocked rank is re-examined only when something it
//! waits on completes — a message match delivers a wake to the owning
//! rank(s), the last entrant of a collective wakes all participants.
//! Total scheduler work is `O(ops + messages)`; blocked ranks are never
//! polled. Results are *visiting-order independent*: completion times
//! are computed from posted timestamps alone (FIFO matching within a
//! channel involves exactly two ranks, whose postings are already in
//! program order; collective finishes are max-reductions over entry
//! times), so the ready-queue engine reproduces the earlier
//! polling-sweep engine bit for bit. `tests/prop_engine.rs` pins this
//! equivalence with golden fingerprints captured from the polling
//! implementation.
//!
//! The engine is deterministic: completion times depend only on the
//! programs and the network model, never on host scheduling.
//!
//! With [`SimConfig::threads`] `> 1` the run is executed by the
//! conservative parallel (PDES) scheduler in [`crate::pdes`]: the rank
//! range is split into contiguous, node-aligned partitions, each driven
//! by its own ready-queue scheduler on a host thread, with
//! cross-partition traffic forwarded over inter-partition channels. The
//! visiting-order independence above is exactly what makes this safe —
//! the parallel engine produces a bit-identical [`SimResult`] at every
//! thread count, and `threads == 1` (the default) runs the sequential
//! scheduler below unchanged.

use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use crate::faults::{ActiveFaults, FaultPlan};
use crate::netmodel::NetModel;
use crate::profile::{Phase, Profile, Regime};
use crate::program::{Op, Program, ReqId};
use crate::trace::{EventKind, Timeline};

/// Engine configuration.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SimConfig {
    /// Record a full event timeline. Off by default — timelines hold
    /// one entry per executed op and dominate memory on large sweeps;
    /// the Fig. 2 insets and CSV export request tracing explicitly.
    pub trace: bool,
    /// Accumulate the online [`Profile`] (per-rank phase split,
    /// message-size histograms, rank×rank communication matrix). Cheap
    /// (O(ranks²) memory, O(1) per op) and on by default; works
    /// independently of `trace`. When off, the run is monomorphized
    /// against a no-op recorder, so the hot path carries no profile
    /// branches at all.
    pub profile: bool,
    /// Seeded fault-injection plan ([`FaultPlan::none()`] by default).
    /// Like the profile/trace sinks, the run loop is monomorphized over
    /// the fault hook: an empty plan selects a no-op hook, carries no
    /// fault branches on the hot path, and keeps [`SimResult`]
    /// bit-identical to a faults-free build.
    pub faults: FaultPlan,
    /// Number of partition threads for the parallel (PDES) scheduler.
    /// `1` (the default) runs the sequential engine unchanged; values
    /// above `1` split the rank range into contiguous, node-aligned
    /// partitions executed on host threads (see [`crate::pdes`]).
    /// `SimResult` is bit-identical at every thread count; `0` is
    /// clamped to `1`, and values above the rank count are clamped to
    /// it.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            trace: false,
            profile: true,
            faults: FaultPlan::none(),
            threads: 1,
        }
    }
}

impl SimConfig {
    /// Builder: set [`SimConfig::trace`].
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Builder: set [`SimConfig::profile`].
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Builder: set [`SimConfig::faults`].
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder: set [`SimConfig::threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No rank can make progress. Contains `(rank, op index, op)` for
    /// every blocked rank.
    Deadlock(Vec<(usize, usize, Op)>),
    /// Ranks disagree on the collective sequence.
    CollectiveMismatch {
        seq: usize,
        rank: usize,
        expected: &'static str,
        found: &'static str,
    },
    /// A program failed structural validation.
    InvalidProgram { rank: usize, reason: String },
    /// An op referenced a rank outside `0..nranks`.
    RankOutOfRange { rank: usize, op_index: usize },
    /// A rank was hard-killed by an injected
    /// [`FaultEvent::Crash`](crate::faults::FaultEvent). MPI-abort
    /// semantics: the whole run aborts, blaming the crashed rank and
    /// the op it was about to execute.
    RankFailed {
        rank: usize,
        op_index: usize,
        at_s: f64,
    },
    /// The run was cancelled cooperatively (the harness's per-run
    /// timeout sets the engine's cancellation token).
    Cancelled,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(blocked) => {
                write!(f, "deadlock: {} rank(s) blocked", blocked.len())?;
                for (r, pc, op) in blocked.iter().take(8) {
                    write!(f, "; rank {r} at op {pc} ({op:?})")?;
                }
                if blocked.len() > 8 {
                    write!(f, "; … and {} more blocked ranks", blocked.len() - 8)?;
                }
                Ok(())
            }
            SimError::CollectiveMismatch {
                seq,
                rank,
                expected,
                found,
            } => write!(
                f,
                "collective mismatch at sequence {seq}: rank {rank} called {found}, others {expected}"
            ),
            SimError::InvalidProgram { rank, reason } => {
                write!(f, "invalid program on rank {rank}: {reason}")
            }
            SimError::RankOutOfRange { rank, op_index } => {
                write!(f, "rank {rank} out of range at op {op_index}")
            }
            SimError::RankFailed {
                rank,
                op_index,
                at_s,
            } => write!(
                f,
                "rank {rank} failed (injected crash) at t={at_s:.6}s before op {op_index}; aborting run"
            ),
            SimError::Cancelled => write!(f, "run cancelled"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a simulated run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Time at which the last rank finished (seconds).
    pub makespan: f64,
    /// Finish time of every rank.
    pub finish_times: Vec<f64>,
    /// Event timeline (empty if tracing was disabled).
    pub timeline: Timeline,
    /// Total point-to-point payload bytes moved.
    pub p2p_bytes: u64,
    /// Point-to-point payload bytes that crossed a node boundary.
    pub internode_bytes: u64,
    /// Per-rank time per event kind (indexed by [`EventKind::ALL`]
    /// order), accumulated online — available even without tracing.
    pub per_rank_breakdown: Vec<[f64; EventKind::COUNT]>,
    /// Online observability profile (empty if profiling was disabled).
    pub profile: Profile,
}

impl SimResult {
    /// Aggregate [`Breakdown`](crate::trace::Breakdown) over all ranks from the online counters.
    pub fn breakdown(&self) -> crate::trace::Breakdown {
        let mut b = crate::trace::Breakdown::default();
        for rank in &self.per_rank_breakdown {
            for (i, &kind) in EventKind::ALL.iter().enumerate() {
                if rank[i] > 0.0 {
                    *b.seconds.entry(kind).or_insert(0.0) += rank[i];
                    b.total += rank[i];
                }
            }
        }
        b
    }
}

/// Output of the engine's fused validation prepass: one walk over every
/// program performing the structural checks of [`Program::validate`]
/// (same rules, same messages), the peer range checks, and the
/// point-to-point post count that sizes the request arena.
///
/// A `Prepass` is reusable: it depends only on the programs, not on the
/// configuration, network model or fault plan, so a caller simulating
/// several runs of the same programs (or of programs *derived* from a
/// shared template — see [`Prepass::scaled`]) pays for the walk once.
#[derive(Debug, Clone)]
pub struct Prepass {
    /// Point-to-point posts per rank (`Send`/`Isend`/`Recv`/`Irecv`
    /// count 1, `Sendrecv` counts 2).
    pub(crate) p2p_ops: Vec<usize>,
}

impl Prepass {
    /// Run the fused validate/range/count walk over `programs`.
    ///
    /// Error precedence matches running [`Program::validate`] first: a
    /// structural error on a rank wins over any range error on that
    /// rank, regardless of op order, so range errors are buffered until
    /// the rank's walk finishes.
    pub fn analyze(programs: &[Program]) -> Result<Self, SimError> {
        let nranks = programs.len();
        let mut p2p_ops: Vec<usize> = vec![0; nranks];
        let mut open: std::collections::BTreeSet<ReqId> = std::collections::BTreeSet::new();
        for (rank, p) in programs.iter().enumerate() {
            open.clear();
            let invalid = |reason: String| SimError::InvalidProgram { rank, reason };
            let mut range_err: Option<SimError> = None;
            for (op_index, op) in p.ops.iter().enumerate() {
                let peer = match op {
                    Op::Send { to, .. } => {
                        p2p_ops[rank] += 1;
                        Some(*to)
                    }
                    Op::Isend { to, req, .. } => {
                        p2p_ops[rank] += 1;
                        if !open.insert(*req) {
                            return Err(invalid(format!("request {req} created while still open")));
                        }
                        Some(*to)
                    }
                    Op::Recv { from, .. } => {
                        p2p_ops[rank] += 1;
                        Some(*from)
                    }
                    Op::Irecv { from, req, .. } => {
                        p2p_ops[rank] += 1;
                        if !open.insert(*req) {
                            return Err(invalid(format!("request {req} created while still open")));
                        }
                        Some(*from)
                    }
                    Op::Wait { req } => {
                        if !open.remove(req) {
                            return Err(invalid(format!(
                                "wait on request {req} which is not open"
                            )));
                        }
                        None
                    }
                    Op::Bcast { root, .. } | Op::Reduce { root, .. } => Some(*root),
                    Op::Sendrecv { to, from, .. } => {
                        p2p_ops[rank] += 2;
                        if *to >= nranks && range_err.is_none() {
                            range_err = Some(SimError::RankOutOfRange {
                                rank: *to,
                                op_index,
                            });
                        }
                        Some(*from)
                    }
                    _ => None,
                };
                if let Some(p) = peer {
                    if p >= nranks && range_err.is_none() {
                        range_err = Some(SimError::RankOutOfRange { rank: p, op_index });
                    }
                }
            }
            if let Some(req) = open.iter().next() {
                return Err(invalid(format!("request {req} never waited on")));
            }
            if let Some(e) = range_err {
                return Err(e);
            }
        }
        Ok(Prepass { p2p_ops })
    }

    /// Prepass of the programs formed by concatenating `reps` copies of
    /// the analyzed template per rank: post counts scale linearly, and
    /// validity is preserved because [`Program::validate`] requires all
    /// requests closed at the end of the template, so every copy starts
    /// from a clean request namespace (the documented
    /// reuse-after-`Wait` rule). Appending collectives (which post no
    /// point-to-point requests) to such a concatenation leaves the
    /// counts unchanged, so e.g. a `W×step + Barrier` warm-up program
    /// is described by `template.scaled(W)` exactly.
    pub fn scaled(&self, reps: usize) -> Prepass {
        Prepass {
            p2p_ops: self.p2p_ops.iter().map(|c| c * reps).collect(),
        }
    }

    /// Number of ranks the prepass describes.
    pub fn nranks(&self) -> usize {
        self.p2p_ops.len()
    }
}

// ---------------------------------------------------------------------------
// Profile recording strategy (monomorphized; see `SimConfig::profile`)
// ---------------------------------------------------------------------------

/// Profile-recording strategy the run loop is monomorphized over: the
/// profile-on instantiation records into a live [`Profile`], the
/// profile-off one compiles to nothing (no per-op branch, no dead
/// `Profile` allocation, and blocked-phase attribution is skipped
/// entirely).
pub(crate) trait ProfileSink {
    /// Whether phase attribution needs to be computed at all.
    const ENABLED: bool;
    fn phase(&mut self, rank: usize, phase: Phase, secs: f64);
    fn message(&mut self, from: usize, to: usize, bytes: usize, regime: Regime);
    fn finish(self) -> Profile;
}

pub(crate) struct LiveProfile(pub(crate) Profile);

impl ProfileSink for LiveProfile {
    const ENABLED: bool = true;
    #[inline]
    fn phase(&mut self, rank: usize, phase: Phase, secs: f64) {
        self.0.record_phase(rank, phase, secs);
    }
    #[inline]
    fn message(&mut self, from: usize, to: usize, bytes: usize, regime: Regime) {
        self.0.record_message(from, to, bytes, regime);
    }
    fn finish(self) -> Profile {
        self.0
    }
}

pub(crate) struct NoProfile;

impl ProfileSink for NoProfile {
    const ENABLED: bool = false;
    #[inline]
    fn phase(&mut self, _rank: usize, _phase: Phase, _secs: f64) {}
    #[inline]
    fn message(&mut self, _from: usize, _to: usize, _bytes: usize, _regime: Regime) {}
    fn finish(self) -> Profile {
        Profile::default()
    }
}

// ---------------------------------------------------------------------------
// Fault-injection strategy (monomorphized; see `SimConfig::faults`)
// ---------------------------------------------------------------------------

/// Fault-injection strategy the run loop is monomorphized over,
/// mirroring [`ProfileSink`]: the faults-off instantiation compiles to
/// nothing (no per-op branch, no crash/cancel polls, no wire-time
/// perturbation — results stay bit-identical to a faults-free build),
/// the active one reads the lookup tables an [`ActiveFaults`] compiled
/// from the plan.
pub(crate) trait FaultHook {
    /// Whether any fault logic needs to run at all.
    const ENABLED: bool;
    /// Perturbed duration of a compute op (`base` when off).
    fn compute_seconds(&self, rank: usize, pc: usize, clock: f64, base: f64) -> f64;
    /// Extra wire latency of the message with sender request `ireq`.
    fn wire_extra(&self, from: usize, to: usize, ireq: IReq) -> f64;
    /// Simulated time at which `rank` dies (`INFINITY` = never).
    fn crash_at(&self, rank: usize) -> f64;
    /// Whether cooperative cancellation was requested.
    fn cancelled(&self) -> bool;
}

/// The zero-cost off path.
pub(crate) struct NoFaults;

impl FaultHook for NoFaults {
    const ENABLED: bool = false;
    #[inline]
    fn compute_seconds(&self, _rank: usize, _pc: usize, _clock: f64, base: f64) -> f64 {
        base
    }
    #[inline]
    fn wire_extra(&self, _from: usize, _to: usize, _ireq: IReq) -> f64 {
        0.0
    }
    #[inline]
    fn crash_at(&self, _rank: usize) -> f64 {
        f64::INFINITY
    }
    #[inline]
    fn cancelled(&self) -> bool {
        false
    }
}

impl FaultHook for ActiveFaults {
    const ENABLED: bool = true;
    #[inline]
    fn compute_seconds(&self, rank: usize, pc: usize, clock: f64, base: f64) -> f64 {
        ActiveFaults::compute_seconds(self, rank, pc, clock, base)
    }
    #[inline]
    fn wire_extra(&self, from: usize, to: usize, ireq: IReq) -> f64 {
        ActiveFaults::wire_extra(self, from, to, ireq)
    }
    #[inline]
    fn crash_at(&self, rank: usize) -> f64 {
        ActiveFaults::crash_at(self, rank)
    }
    #[inline]
    fn cancelled(&self) -> bool {
        ActiveFaults::cancelled(self)
    }
}

// ---------------------------------------------------------------------------
// Hot-path data structures
// ---------------------------------------------------------------------------

/// Multiply-rotate hasher (FxHash-style) for the channel map: the keys
/// are small integer tuples, for which the default SipHash dominates
/// the per-op cost at scale.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `(from, to, tag)` channel key.
type ChannelKey = (usize, usize, u32);

/// Channel storage: a dense slab plus a hash index resolving keys to
/// slab slots. The hash index is consulted only on a rank's memo miss
/// (see [`ChanMemo`]); steady-state communication patterns (rings,
/// halos) hit the memo and never hash.
#[derive(Default)]
pub(crate) struct Channels {
    pub(crate) store: Vec<Channel>,
    index: HashMap<ChannelKey, u32, BuildHasherDefault<FxHasher>>,
}

impl Channels {
    /// Slot of channel `(from, to, tag)`, creating it on first use.
    pub(crate) fn slot(&mut self, np: &NetParams, from: usize, to: usize, tag: u32) -> u32 {
        use std::collections::hash_map::Entry;
        match self.index.entry((from, to, tag)) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let idx = self.store.len() as u32;
                self.store.push(Channel::new(np, from, to));
                e.insert(idx);
                idx
            }
        }
    }
}

/// One-slot memo of the channel a rank last used on each side. MPI
/// programs repeat their communication pattern across iterations, so
/// the memo turns almost every channel lookup into two integer
/// compares.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChanMemo {
    pub(crate) peer: usize,
    pub(crate) tag: u32,
    pub(crate) idx: u32,
}

impl ChanMemo {
    pub(crate) const EMPTY: ChanMemo = ChanMemo {
        peer: usize::MAX,
        tag: 0,
        idx: 0,
    };
}

/// Internal request id (separate namespace from user [`ReqId`]s).
pub(crate) type IReq = usize;

/// Sentinel for an unoccupied user-request slot.
pub(crate) const NO_REQ: IReq = usize::MAX;

/// What an internal request stands for — used to attribute blocked time
/// to a [`Phase`] in the online profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReqClass {
    EagerSend,
    RdvSend,
    Recv,
}

/// One internal request: pending until `done`, then complete at
/// `done_at`. State and classification live in one table so a post
/// touches a single cache line.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Req {
    pub(crate) done_at: f64,
    pub(crate) class: ReqClass,
    pub(crate) done: bool,
}

/// Map the eager-protocol decision onto the profile's [`Regime`].
pub(crate) fn regime_of(eager: bool) -> Regime {
    if eager {
        Regime::Eager
    } else {
        Regime::Rendezvous
    }
}

/// Network parameters the hot path needs, flattened out of
/// [`NetModel`]: the per-message cost is `lat + bytes / denom`, chosen
/// by node placement, exactly as
/// [`InterconnectSpec::wire_time`](spechpc_machine::cluster::InterconnectSpec::wire_time)
/// computes it (the `bandwidth * 1e9` product is hoisted, the division
/// is not — keeping results bit-identical).
pub(crate) struct NetParams {
    pub(crate) send_overhead: f64,
    pub(crate) eager_threshold: usize,
    pub(crate) lat_intra: f64,
    pub(crate) denom_intra: f64,
    pub(crate) lat_inter: f64,
    pub(crate) denom_inter: f64,
    /// Node id per rank (dense copy of the pinning).
    pub(crate) node_of: Vec<u32>,
}

impl NetParams {
    pub(crate) fn of(net: &NetModel, nranks: usize) -> Self {
        let ic = net.interconnect();
        NetParams {
            send_overhead: net.send_overhead,
            eager_threshold: ic.eager_threshold,
            lat_intra: ic.intranode_latency_s,
            denom_intra: ic.intranode_bandwidth * 1e9,
            lat_inter: ic.latency_s,
            denom_inter: ic.effective_bandwidth * 1e9,
            node_of: (0..nranks)
                .map(|r| net.pinning().placement(r).node as u32)
                .collect(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct SendPost {
    pub(crate) time: f64,
    pub(crate) bytes: usize,
    pub(crate) ireq: IReq,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct RecvPost {
    pub(crate) time: f64,
    pub(crate) ireq: IReq,
}

/// FIFO with two inline slots and a heap spill area. A channel's
/// backlog spans only the current rendezvous window, so the steady
/// state of every point-to-point pattern fits inline and a run's
/// channels never heap-allocate; deeper backlogs (bursts of
/// non-blocking posts) spill to a `Vec` in push order. Inline entries
/// are always older than spilled ones, so popping inline-first
/// preserves FIFO order.
#[derive(Debug)]
pub(crate) struct Fifo<T> {
    inline: [Option<T>; 2],
    head: u8,
    len: u8,
    spill: Vec<T>,
    spill_head: usize,
}

impl<T> Default for Fifo<T> {
    fn default() -> Self {
        Fifo {
            inline: [None, None],
            head: 0,
            len: 0,
            spill: Vec::new(),
            spill_head: 0,
        }
    }
}

impl<T: Copy> Fifo<T> {
    #[inline]
    fn spill_pending(&self) -> bool {
        self.spill_head < self.spill.len()
    }
    #[inline]
    pub(crate) fn push(&mut self, t: T) {
        // Once anything has spilled, newer items must follow it there
        // until the spill drains, or they would overtake it.
        if self.len < 2 && !self.spill_pending() {
            self.inline[((self.head + self.len) & 1) as usize] = Some(t);
            self.len += 1;
        } else {
            self.spill.push(t);
        }
    }
    #[inline]
    pub(crate) fn pop(&mut self) -> T {
        if self.len > 0 {
            let t = self.inline[self.head as usize]
                .take()
                .expect("occupied slot");
            self.head = (self.head + 1) & 1;
            self.len -= 1;
            t
        } else {
            let t = self.spill[self.spill_head];
            self.spill_head += 1;
            if self.spill_head == self.spill.len() {
                self.spill.clear();
                self.spill_head = 0;
            }
            t
        }
    }
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0 && !self.spill_pending()
    }
}

/// One `(from, to, tag)` message channel. The wire parameters of the
/// rank pair are resolved once at channel creation, so matching never
/// consults the pinning tables.
#[derive(Debug)]
pub(crate) struct Channel {
    pub(crate) sends: Fifo<SendPost>,
    pub(crate) recvs: Fifo<RecvPost>,
    pub(crate) wire_lat: f64,
    pub(crate) wire_denom: f64,
    pub(crate) same_node: bool,
}

impl Channel {
    pub(crate) fn new(np: &NetParams, from: usize, to: usize) -> Self {
        let same_node = np.node_of[from] == np.node_of[to];
        Channel {
            sends: Fifo::default(),
            recvs: Fifo::default(),
            wire_lat: if same_node {
                np.lat_intra
            } else {
                np.lat_inter
            },
            wire_denom: if same_node {
                np.denom_intra
            } else {
                np.denom_inter
            },
            same_node,
        }
    }
}

/// Inline set of the internal requests one blocking op waits on.
/// `Sendrecv` is the maximum arity (2), so no blocking op ever
/// heap-allocates its request list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReqSet {
    reqs: [IReq; 2],
    len: u8,
}

impl ReqSet {
    #[inline]
    pub(crate) fn one(a: IReq) -> Self {
        ReqSet {
            reqs: [a, a],
            len: 1,
        }
    }
    #[inline]
    pub(crate) fn two(a: IReq, b: IReq) -> Self {
        ReqSet {
            reqs: [a, b],
            len: 2,
        }
    }
    #[inline]
    pub(crate) fn as_slice(&self) -> &[IReq] {
        &self.reqs[..self.len as usize]
    }
}

/// What a rank is currently blocked on.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Blocked {
    /// Waiting for a set of internal requests; resumes at the max of
    /// their completion times (and not before `start`).
    Reqs {
        reqs: ReqSet,
        kind: EventKind,
        start: f64,
    },
    /// Waiting inside the collective at the rank's current sequence
    /// number.
    Collective { start: f64 },
}

pub(crate) struct RankState {
    pub(crate) pc: usize,
    pub(crate) clock: f64,
    pub(crate) blocked: Option<Blocked>,
    pub(crate) done: bool,
    /// Next free slot in the rank's range of the shared request arena.
    pub(crate) req_next: usize,
    /// One past the last slot of that range (bounds the posts the
    /// validation prepass counted for this rank).
    pub(crate) req_end: usize,
    /// Memo of the last send-side channel (`(to, tag)` → slot).
    pub(crate) send_memo: ChanMemo,
    /// Memo of the last receive-side channel (`(from, tag)` → slot).
    pub(crate) recv_memo: ChanMemo,
    /// User request id → internal request id, as a slot vector indexed
    /// by [`ReqId`] (program validation guarantees every `Wait` follows
    /// its creation, so a `Wait` always finds its slot occupied).
    pub(crate) user_reqs: Vec<IReq>,
    /// Rank-local collective sequence number.
    pub(crate) coll_seq: usize,
}

struct CollectiveEntry {
    event_kind: EventKind,
    bytes: usize,
    /// Ranks entered so far.
    entered: usize,
    /// Running max of the entry times (same accumulation order as the
    /// entries arrive, so the result is bit-identical to a fold over a
    /// stored entry list).
    max_entry: f64,
    /// Completion time once all ranks have entered.
    finish: Option<f64>,
}

/// The scheduler's wake-list: ranks that may be able to make progress.
///
/// Invariants:
/// * a rank is on the queue at most once (`queued` flags),
/// * every request completion delivered to a rank enqueues that rank
///   (unless it is the rank currently executing, which re-examines its
///   own blocked state inline before yielding),
/// * a popped rank that is still blocked simply stays off the queue —
///   the next completion delivered to it re-enqueues it.
///
/// Together these guarantee no lost wakeups: a rank blocks only on
/// requests/collectives that complete exactly once, and each completion
/// produces a wake.
pub(crate) struct ReadyQueue {
    queue: VecDeque<usize>,
    queued: Vec<bool>,
}

impl ReadyQueue {
    fn with_all(nranks: usize) -> Self {
        Self::with_range(nranks, 0, nranks)
    }

    /// Queue over the global rank id space with only `lo..hi` initially
    /// runnable — the partition-local variant the PDES scheduler uses
    /// (a partition only ever enqueues its own ranks).
    pub(crate) fn with_range(nranks: usize, lo: usize, hi: usize) -> Self {
        ReadyQueue {
            queue: (lo..hi).collect(),
            queued: (0..nranks).map(|r| (lo..hi).contains(&r)).collect(),
        }
    }

    #[inline]
    pub(crate) fn wake(&mut self, rank: usize, running: usize) {
        if rank != running && !self.queued[rank] {
            self.queued[rank] = true;
            self.queue.push_back(rank);
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<usize> {
        let r = self.queue.pop_front()?;
        self.queued[r] = false;
        Some(r)
    }
}

/// The discrete-event engine. See the module docs for semantics.
pub struct Engine {
    pub(crate) config: SimConfig,
    pub(crate) net: NetModel,
    pub(crate) programs: Vec<Program>,
    /// Cooperative cancellation token (see [`Engine::with_cancel`]).
    pub(crate) cancel: Option<Arc<AtomicBool>>,
}

impl Engine {
    pub fn new(config: SimConfig, net: NetModel, programs: Vec<Program>) -> Self {
        assert_eq!(
            net.nprocs(),
            programs.len(),
            "network model sized for {} ranks but {} programs given",
            net.nprocs(),
            programs.len()
        );
        Engine {
            config,
            net,
            programs,
            cancel: None,
        }
    }

    /// Attach a cooperative cancellation token: when another thread
    /// sets the flag, the run aborts at the next op boundary with
    /// [`SimError::Cancelled`]. Attaching a token routes the run
    /// through the fault-capable instantiation of the scheduler (the
    /// flag is polled at op granularity), so timing results remain
    /// identical but the zero-poll fast path is forgone.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Execute the programs to completion.
    pub fn run(self) -> Result<SimResult, SimError> {
        let prepass = Prepass::analyze(&self.programs)?;
        self.run_prevalidated(&prepass)
    }

    /// Execute programs whose [`Prepass`] was computed (or derived) in
    /// advance — the batch-simulation entry point: callers simulating a
    /// family of runs built from one program template analyze the
    /// template once and derive each run's prepass arithmetically (see
    /// [`Prepass::scaled`]) instead of re-walking every concatenated
    /// program.
    ///
    /// The prepass must describe exactly `self`'s programs (the rank
    /// count is asserted; the per-rank post counts are trusted, and a
    /// debug assertion in the scheduler catches undercounts).
    pub fn run_prevalidated(self, prepass: &Prepass) -> Result<SimResult, SimError> {
        let nranks = self.programs.len();
        assert_eq!(
            prepass.p2p_ops.len(),
            nranks,
            "prepass sized for {} ranks but {} programs given",
            prepass.p2p_ops.len(),
            nranks
        );
        // `threads` is a scheduling knob, never a semantic one: results
        // are bit-identical at every value, 0 is clamped to 1 and the
        // partition count never exceeds the rank count.
        let threads = self.config.threads.max(1).min(nranks.max(1));
        if threads > 1 {
            return crate::pdes::run_parallel(self, prepass, threads);
        }
        let p2p_ops = &prepass.p2p_ops;

        // Fault-capable instantiations are selected only when a plan or
        // a cancellation token is present; otherwise the zero-cost
        // `NoFaults` hook keeps the hot path free of fault branches.
        if !self.config.faults.is_none() || self.cancel.is_some() {
            let hook = ActiveFaults::compile(&self.config.faults, nranks, self.cancel.clone());
            match (self.config.profile, self.config.trace) {
                (true, false) => {
                    self.run_with::<_, _, false>(LiveProfile(Profile::new(nranks)), hook, p2p_ops)
                }
                (true, true) => {
                    self.run_with::<_, _, true>(LiveProfile(Profile::new(nranks)), hook, p2p_ops)
                }
                (false, false) => self.run_with::<_, _, false>(NoProfile, hook, p2p_ops),
                (false, true) => self.run_with::<_, _, true>(NoProfile, hook, p2p_ops),
            }
        } else {
            match (self.config.profile, self.config.trace) {
                (true, false) => self.run_with::<_, _, false>(
                    LiveProfile(Profile::new(nranks)),
                    NoFaults,
                    p2p_ops,
                ),
                (true, true) => self.run_with::<_, _, true>(
                    LiveProfile(Profile::new(nranks)),
                    NoFaults,
                    p2p_ops,
                ),
                (false, false) => self.run_with::<_, _, false>(NoProfile, NoFaults, p2p_ops),
                (false, true) => self.run_with::<_, _, true>(NoProfile, NoFaults, p2p_ops),
            }
        }
    }

    /// The event-driven scheduler, monomorphized over the profile
    /// recording strategy, the fault hook and the tracing flag.
    /// Programs are already validated.
    fn run_with<P: ProfileSink, F: FaultHook, const TRACE: bool>(
        self,
        mut profile: P,
        faults: F,
        p2p_ops: &[usize],
    ) -> Result<SimResult, SimError> {
        let nranks = self.programs.len();
        let np = NetParams::of(&self.net, nranks);
        // All internal requests live in one flat arena; each rank owns
        // the contiguous range sized by its prepass post count (one
        // allocation and dense locality instead of a table per rank).
        let mut base = 0usize;
        let mut ranks: Vec<RankState> = (0..nranks)
            .map(|r| {
                let start = base;
                base += p2p_ops[r];
                RankState {
                    pc: 0,
                    clock: 0.0,
                    blocked: None,
                    done: false,
                    req_next: start,
                    req_end: base,
                    send_memo: ChanMemo::EMPTY,
                    recv_memo: ChanMemo::EMPTY,
                    user_reqs: Vec::new(),
                    coll_seq: 0,
                }
            })
            .collect();
        let mut reqs: Vec<Req> = vec![
            Req {
                done_at: 0.0,
                class: ReqClass::Recv,
                done: false,
            };
            base
        ];
        let mut channels = Channels::default();
        let mut collectives: Vec<CollectiveEntry> = Vec::new();
        let mut timeline = Timeline::new(nranks);
        // Online per-rank breakdown (kept even when full tracing is off).
        let mut breakdown: Vec<[f64; EventKind::COUNT]> = vec![[0.0; EventKind::COUNT]; nranks];
        let mut p2p_bytes: u64 = 0;
        let mut internode_bytes: u64 = 0;
        let mut ready = ReadyQueue::with_all(nranks);

        while let Some(r) = ready.pop() {
            if ranks[r].done {
                continue; // woken spuriously after finishing
            }
            loop {
                if F::ENABLED {
                    // Cooperative cancellation and hard crashes are
                    // checked at op granularity; both abort the whole
                    // run (MPI-abort semantics for crashes).
                    if faults.cancelled() {
                        return Err(SimError::Cancelled);
                    }
                    if ranks[r].clock >= faults.crash_at(r) {
                        return Err(SimError::RankFailed {
                            rank: r,
                            op_index: ranks[r].pc,
                            at_s: ranks[r].clock,
                        });
                    }
                }
                // Re-examine the blocked state first: a popped rank was
                // woken by a completion that may end its blocked op.
                // (Blocking ops that can finish immediately never store
                // a `Blocked` at all — they unblock inline below.)
                match ranks[r].blocked {
                    Some(Blocked::Reqs {
                        reqs: set,
                        kind,
                        start,
                    }) => {
                        if !Self::try_unblock_reqs::<P, TRACE>(
                            r,
                            set,
                            kind,
                            start,
                            &mut ranks,
                            &reqs,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        ) {
                            // Still pending; the next completion
                            // delivered to this rank re-enqueues it.
                            break;
                        }
                        continue;
                    }
                    Some(Blocked::Collective { start }) => {
                        let entry = &collectives[ranks[r].coll_seq];
                        let Some(finish) = entry.finish else {
                            break;
                        };
                        Self::unblock_collective::<P, TRACE>(
                            r,
                            start,
                            finish,
                            entry.event_kind,
                            &mut ranks,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        );
                        continue;
                    }
                    None => {}
                }

                if ranks[r].pc >= self.programs[r].ops.len() {
                    ranks[r].done = true;
                    break;
                }

                let op = self.programs[r].ops[ranks[r].pc];
                let clock = ranks[r].clock;
                match op {
                    Op::Compute { seconds } => {
                        // Fault inflation (noise, straggler, throttle)
                        // stretches the op; the excess over the
                        // fault-free duration is attributed to
                        // `Phase::FaultStall` so variability studies
                        // can read the injected time directly.
                        let (total, stall) = if F::ENABLED {
                            let t = faults.compute_seconds(r, ranks[r].pc, clock, seconds);
                            (t, (t - seconds).max(0.0))
                        } else {
                            (seconds, 0.0)
                        };
                        if TRACE {
                            timeline.record(r, clock, clock + total, EventKind::Compute);
                        }
                        breakdown[r][EventKind::Compute.index()] += total;
                        if F::ENABLED && stall > 0.0 {
                            profile.phase(r, Phase::Compute, total - stall);
                            profile.phase(r, Phase::FaultStall, stall);
                        } else {
                            profile.phase(r, Phase::Compute, total);
                        }
                        ranks[r].clock += total;
                        ranks[r].pc += 1;
                    }
                    Op::Send { to, tag, bytes } => {
                        let eager = bytes < np.eager_threshold;
                        let (ireq, same_node) = Self::post_send(
                            &np,
                            &mut ranks,
                            &mut reqs,
                            &mut channels,
                            &mut ready,
                            r,
                            to,
                            tag,
                            bytes,
                            clock,
                            eager,
                            &faults,
                        );
                        profile.message(r, to, bytes, regime_of(eager));
                        p2p_bytes += bytes as u64;
                        if !same_node {
                            internode_bytes += bytes as u64;
                        }
                        let set = ReqSet::one(ireq);
                        if !Self::try_unblock_reqs::<P, TRACE>(
                            r,
                            set,
                            EventKind::Send,
                            clock,
                            &mut ranks,
                            &reqs,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        ) {
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: set,
                                kind: EventKind::Send,
                                start: clock,
                            });
                            break;
                        }
                    }
                    Op::Recv { from, tag } => {
                        let ireq = Self::post_recv(
                            &np,
                            &mut ranks,
                            &mut reqs,
                            &mut channels,
                            &mut ready,
                            from,
                            r,
                            tag,
                            clock,
                            &faults,
                        );
                        let set = ReqSet::one(ireq);
                        if !Self::try_unblock_reqs::<P, TRACE>(
                            r,
                            set,
                            EventKind::Recv,
                            clock,
                            &mut ranks,
                            &reqs,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        ) {
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: set,
                                kind: EventKind::Recv,
                                start: clock,
                            });
                            break;
                        }
                    }
                    Op::Sendrecv {
                        to,
                        send_bytes,
                        from,
                        tag,
                    } => {
                        let eager = send_bytes < np.eager_threshold;
                        let (s, same_node) = Self::post_send(
                            &np,
                            &mut ranks,
                            &mut reqs,
                            &mut channels,
                            &mut ready,
                            r,
                            to,
                            tag,
                            send_bytes,
                            clock,
                            eager,
                            &faults,
                        );
                        let v = Self::post_recv(
                            &np,
                            &mut ranks,
                            &mut reqs,
                            &mut channels,
                            &mut ready,
                            from,
                            r,
                            tag,
                            clock,
                            &faults,
                        );
                        profile.message(r, to, send_bytes, regime_of(eager));
                        p2p_bytes += send_bytes as u64;
                        if !same_node {
                            internode_bytes += send_bytes as u64;
                        }
                        let set = ReqSet::two(s, v);
                        if !Self::try_unblock_reqs::<P, TRACE>(
                            r,
                            set,
                            EventKind::Sendrecv,
                            clock,
                            &mut ranks,
                            &reqs,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        ) {
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: set,
                                kind: EventKind::Sendrecv,
                                start: clock,
                            });
                            break;
                        }
                    }
                    Op::Isend {
                        to,
                        tag,
                        bytes,
                        req,
                    } => {
                        let eager = bytes < np.eager_threshold;
                        let (ireq, same_node) = Self::post_send(
                            &np,
                            &mut ranks,
                            &mut reqs,
                            &mut channels,
                            &mut ready,
                            r,
                            to,
                            tag,
                            bytes,
                            clock,
                            eager,
                            &faults,
                        );
                        Self::set_user_req(&mut ranks[r].user_reqs, req, ireq);
                        ranks[r].pc += 1;
                        profile.message(r, to, bytes, regime_of(eager));
                        p2p_bytes += bytes as u64;
                        if !same_node {
                            internode_bytes += bytes as u64;
                        }
                    }
                    Op::Irecv { from, tag, req } => {
                        let ireq = Self::post_recv(
                            &np,
                            &mut ranks,
                            &mut reqs,
                            &mut channels,
                            &mut ready,
                            from,
                            r,
                            tag,
                            clock,
                            &faults,
                        );
                        Self::set_user_req(&mut ranks[r].user_reqs, req, ireq);
                        ranks[r].pc += 1;
                    }
                    Op::Wait { req } => {
                        let ireq = ranks[r].user_reqs[req as usize];
                        debug_assert_ne!(ireq, NO_REQ, "validated: wait follows creation");
                        let set = ReqSet::one(ireq);
                        if !Self::try_unblock_reqs::<P, TRACE>(
                            r,
                            set,
                            EventKind::Wait,
                            clock,
                            &mut ranks,
                            &reqs,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        ) {
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: set,
                                kind: EventKind::Wait,
                                start: clock,
                            });
                            break;
                        }
                    }
                    Op::Allreduce { .. }
                    | Op::Barrier
                    | Op::Bcast { .. }
                    | Op::Reduce { .. }
                    | Op::Allgather { .. }
                    | Op::Alltoall { .. } => {
                        let (kind, bytes) = match op {
                            Op::Allreduce { bytes } => (EventKind::Allreduce, bytes),
                            Op::Barrier => (EventKind::Barrier, 0),
                            Op::Bcast { bytes, .. } => (EventKind::Bcast, bytes),
                            Op::Reduce { bytes, .. } => (EventKind::Reduce, bytes),
                            Op::Allgather { bytes } => (EventKind::Allgather, bytes),
                            Op::Alltoall { bytes } => (EventKind::Alltoall, bytes),
                            _ => unreachable!(),
                        };
                        let seq = ranks[r].coll_seq;
                        Self::enter_collective(
                            &mut collectives,
                            &mut ready,
                            seq,
                            kind,
                            bytes,
                            r,
                            clock,
                            nranks,
                            &self.net,
                        )?;
                        // The last entrant finishes the collective and
                        // unblocks inline; everyone else parks.
                        if let Some(finish) = collectives[seq].finish {
                            Self::unblock_collective::<P, TRACE>(
                                r,
                                clock,
                                finish,
                                kind,
                                &mut ranks,
                                &mut timeline,
                                &mut breakdown,
                                &mut profile,
                            );
                        } else {
                            ranks[r].blocked = Some(Blocked::Collective { start: clock });
                            break;
                        }
                    }
                }
            }
        }

        if ranks.iter().any(|s| !s.done) {
            let blocked = ranks
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.done)
                .map(|(r, s)| {
                    let pc = s.pc.min(self.programs[r].ops.len().saturating_sub(1));
                    (r, s.pc, self.programs[r].ops[pc])
                })
                .collect();
            return Err(SimError::Deadlock(blocked));
        }

        let finish_times: Vec<f64> = ranks.iter().map(|s| s.clock).collect();
        let makespan = finish_times.iter().copied().fold(0.0, f64::max);
        Ok(SimResult {
            makespan,
            finish_times,
            timeline,
            p2p_bytes,
            internode_bytes,
            per_rank_breakdown: breakdown,
            profile: profile.finish(),
        })
    }

    /// If every request in `reqs` has completed, perform the full
    /// unblock bookkeeping (trace, breakdown, profile phase, clock,
    /// program counter) and return `true`; otherwise leave the rank
    /// untouched. Shared by the inline fast path (blocking op completes
    /// at post time) and the wake path (rank re-examined off the ready
    /// queue).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn try_unblock_reqs<P: ProfileSink, const TRACE: bool>(
        r: usize,
        set: ReqSet,
        kind: EventKind,
        start: f64,
        ranks: &mut [RankState],
        reqs: &[Req],
        timeline: &mut Timeline,
        breakdown: &mut [[f64; EventKind::COUNT]],
        profile: &mut P,
    ) -> bool {
        let mut resume = start;
        for &ireq in set.as_slice() {
            let q = reqs[ireq];
            if !q.done {
                return false;
            }
            resume = resume.max(q.done_at);
        }
        // Attribute the blocked time: a rendezvous send in the set
        // means a hand-shake stall; otherwise an unfinished receive
        // dominates (eager sends complete in `o`). Skipped entirely
        // when profiling is off.
        let phase = if !P::ENABLED {
            Phase::Compute // unused
        } else if set
            .as_slice()
            .iter()
            .any(|&q| reqs[q].class == ReqClass::RdvSend)
        {
            Phase::RendezvousStall
        } else if set
            .as_slice()
            .iter()
            .any(|&q| reqs[q].class == ReqClass::Recv)
        {
            Phase::RecvWait
        } else {
            Phase::EagerSend
        };
        if TRACE {
            timeline.record(r, start, resume, kind);
        }
        if resume > start {
            breakdown[r][kind.index()] += resume - start;
            profile.phase(r, phase, resume - start);
        }
        let state = &mut ranks[r];
        state.clock = resume;
        state.blocked = None;
        state.pc += 1;
        true
    }

    /// Unblock bookkeeping for a finished collective: the rank leaves
    /// at the common `finish` time and advances to its next collective
    /// sequence number.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn unblock_collective<P: ProfileSink, const TRACE: bool>(
        r: usize,
        start: f64,
        finish: f64,
        kind: EventKind,
        ranks: &mut [RankState],
        timeline: &mut Timeline,
        breakdown: &mut [[f64; EventKind::COUNT]],
        profile: &mut P,
    ) {
        if TRACE {
            timeline.record(r, start, finish, kind);
        }
        if finish > start {
            breakdown[r][kind.index()] += finish - start;
            profile.phase(r, Phase::CollectiveWait, finish - start);
        }
        let state = &mut ranks[r];
        state.clock = finish;
        state.blocked = None;
        state.coll_seq += 1;
        state.pc += 1;
    }

    /// Record `user req id → ireq` in the slot vector, growing it on
    /// first use of a new id (ids may be reused after their `Wait`).
    #[inline]
    pub(crate) fn set_user_req(user_reqs: &mut Vec<IReq>, req: ReqId, ireq: IReq) {
        let slot = req as usize;
        if user_reqs.len() <= slot {
            user_reqs.resize(slot + 1, NO_REQ);
        }
        user_reqs[slot] = ireq;
    }

    /// Create the internal request for a send, append the posting to
    /// its channel (completing it locally right away if eager), and
    /// resolve any matches this enables. Returns the request and
    /// whether the pair shares a node.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn post_send<F: FaultHook>(
        np: &NetParams,
        ranks: &mut [RankState],
        reqs: &mut [Req],
        channels: &mut Channels,
        ready: &mut ReadyQueue,
        from: usize,
        to: usize,
        tag: u32,
        bytes: usize,
        time: f64,
        eager: bool,
        faults: &F,
    ) -> (IReq, bool) {
        let rank = &mut ranks[from];
        let ireq = rank.req_next;
        debug_assert!(ireq < rank.req_end, "prepass under-counted posts");
        rank.req_next += 1;
        // Eager sends complete locally after the sender overhead,
        // receiver or not.
        reqs[ireq] = Req {
            done_at: if eager { time + np.send_overhead } else { 0.0 },
            class: if eager {
                ReqClass::EagerSend
            } else {
                ReqClass::RdvSend
            },
            done: eager,
        };
        let memo = rank.send_memo;
        let slot = if memo.peer == to && memo.tag == tag {
            memo.idx
        } else {
            let idx = channels.slot(np, from, to, tag);
            rank.send_memo = ChanMemo { peer: to, tag, idx };
            idx
        };
        let ch = &mut channels.store[slot as usize];
        ch.sends.push(SendPost { time, bytes, ireq });
        let same_node = ch.same_node;
        Self::match_channel(np.eager_threshold, ch, from, to, reqs, ready, from, faults);
        (ireq, same_node)
    }

    /// Create the internal request for a receive, append the posting to
    /// its channel, and resolve any matches this enables.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn post_recv<F: FaultHook>(
        np: &NetParams,
        ranks: &mut [RankState],
        reqs: &mut [Req],
        channels: &mut Channels,
        ready: &mut ReadyQueue,
        from: usize,
        to: usize,
        tag: u32,
        time: f64,
        faults: &F,
    ) -> IReq {
        let rank = &mut ranks[to];
        let ireq = rank.req_next;
        debug_assert!(ireq < rank.req_end, "prepass under-counted posts");
        rank.req_next += 1;
        // The arena slot is pre-initialized to a pending `Recv`, which
        // is exactly this request's state.
        let memo = rank.recv_memo;
        let slot = if memo.peer == from && memo.tag == tag {
            memo.idx
        } else {
            let idx = channels.slot(np, from, to, tag);
            rank.recv_memo = ChanMemo {
                peer: from,
                tag,
                idx,
            };
            idx
        };
        let ch = &mut channels.store[slot as usize];
        ch.recvs.push(RecvPost { time, ireq });
        Self::match_channel(np.eager_threshold, ch, from, to, reqs, ready, to, faults);
        ireq
    }

    /// Match pending send/recv pairs in one channel (`from → to`),
    /// delivering completions straight into the owning ranks' request
    /// tables and waking those ranks (the currently executing rank
    /// `running` re-examines its own state inline instead). FIFO per
    /// channel preserves MPI's non-overtaking rule.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn match_channel<F: FaultHook>(
        eager_threshold: usize,
        ch: &mut Channel,
        from: usize,
        to: usize,
        reqs: &mut [Req],
        ready: &mut ReadyQueue,
        running: usize,
        faults: &F,
    ) {
        while !ch.sends.is_empty() && !ch.recvs.is_empty() {
            let s = ch.sends.pop();
            let v = ch.recvs.pop();
            let mut wire = ch.wire_lat + s.bytes as f64 / ch.wire_denom;
            if F::ENABLED {
                // Degraded-link retransmissions lengthen the transfer;
                // the draw is keyed by the sender's program-order
                // request id, keeping it visiting-order independent.
                wire += faults.wire_extra(from, to, s.ireq);
            }
            if s.bytes < eager_threshold {
                // The sender's completion was already issued at post time
                // (eager sends complete locally); only the receive side
                // completes here, at message arrival.
                let arrival = s.time + wire;
                let recv_done = v.time.max(arrival);
                let rq = &mut reqs[v.ireq];
                rq.done_at = recv_done;
                rq.done = true;
                ready.wake(to, running);
            } else {
                // Rendezvous: transfer starts when both are ready.
                let start = s.time.max(v.time);
                let done = start + wire;
                let sq = &mut reqs[s.ireq];
                sq.done_at = done;
                sq.done = true;
                let rq = &mut reqs[v.ireq];
                rq.done_at = done;
                rq.done = true;
                ready.wake(from, running);
                ready.wake(to, running);
            }
        }
    }

    /// Name used in collective-mismatch diagnostics.
    pub(crate) fn collective_name(kind: EventKind) -> &'static str {
        match kind {
            EventKind::Allreduce => "Allreduce",
            EventKind::Barrier => "Barrier",
            EventKind::Bcast => "Bcast",
            EventKind::Reduce => "Reduce",
            EventKind::Allgather => "Allgather",
            EventKind::Alltoall => "Alltoall",
            _ => "?",
        }
    }

    /// Enter rank `rank` into the collective at sequence `seq`; the
    /// last entrant computes the common finish time and wakes every
    /// participant (except the entrant itself, which re-examines its
    /// state inline).
    #[allow(clippy::too_many_arguments)]
    fn enter_collective(
        collectives: &mut Vec<CollectiveEntry>,
        ready: &mut ReadyQueue,
        seq: usize,
        kind: EventKind,
        bytes: usize,
        rank: usize,
        time: f64,
        nranks: usize,
        net: &NetModel,
    ) -> Result<(), SimError> {
        if collectives.len() <= seq {
            collectives.push(CollectiveEntry {
                event_kind: kind,
                bytes,
                entered: 0,
                max_entry: 0.0,
                finish: None,
            });
        }
        let entry = &mut collectives[seq];
        if entry.event_kind != kind {
            return Err(SimError::CollectiveMismatch {
                seq,
                rank,
                expected: Self::collective_name(entry.event_kind),
                found: Self::collective_name(kind),
            });
        }
        entry.bytes = entry.bytes.max(bytes);
        entry.entered += 1;
        entry.max_entry = entry.max_entry.max(time);
        if entry.entered == nranks {
            let max_entry = entry.max_entry;
            let cost = match entry.event_kind {
                EventKind::Barrier => net.barrier_cost(nranks),
                EventKind::Allreduce => net.allreduce_cost(nranks, entry.bytes),
                EventKind::Bcast => net.bcast_cost(nranks, entry.bytes),
                EventKind::Reduce => net.reduce_cost(nranks, entry.bytes),
                EventKind::Allgather => net.allgather_cost(nranks, entry.bytes),
                EventKind::Alltoall => net.alltoall_cost(nranks, entry.bytes),
                _ => 0.0,
            };
            entry.finish = Some(max_entry + cost);
            // Every rank participates in every collective, so the wake
            // targets are simply all ranks.
            for er in 0..nranks {
                ready.wake(er, rank);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Op, Program};
    use spechpc_machine::presets;

    fn engine_for(progs: Vec<Program>) -> Engine {
        let cluster = presets::cluster_a();
        let net = NetModel::compact(&cluster, progs.len());
        Engine::new(SimConfig::default(), net, progs)
    }

    fn run(progs: Vec<Program>) -> SimResult {
        engine_for(progs).run().expect("simulation must succeed")
    }

    #[test]
    fn pure_compute_runs_independently() {
        let mut p0 = Program::new();
        p0.push(Op::compute(1.0));
        let mut p1 = Program::new();
        p1.push(Op::compute(2.0));
        let r = run(vec![p0, p1]);
        assert!((r.finish_times[0] - 1.0).abs() < 1e-12);
        assert!((r.finish_times[1] - 2.0).abs() < 1e-12);
        assert!((r.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eager_send_does_not_wait_for_receiver() {
        // Rank 0 sends a tiny message then computes; rank 1 computes for
        // a long time before receiving. Eager: sender is not delayed.
        let mut p0 = Program::new();
        p0.push(Op::send(1, 0, 8));
        p0.push(Op::compute(1.0));
        let mut p1 = Program::new();
        p1.push(Op::compute(5.0));
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        assert!(
            r.finish_times[0] < 1.1,
            "eager sender delayed: {:?}",
            r.finish_times
        );
        assert!(r.finish_times[1] >= 5.0);
    }

    #[test]
    fn rendezvous_send_blocks_until_recv_posted() {
        // 2 MiB is above the 64 KiB eager threshold.
        let mut p0 = Program::new();
        p0.push(Op::send(1, 0, 2 << 20));
        let mut p1 = Program::new();
        p1.push(Op::compute(3.0));
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        // Sender cannot finish before the receiver posts at t=3.
        assert!(
            r.finish_times[0] >= 3.0,
            "rendezvous not enforced: {:?}",
            r.finish_times
        );
    }

    #[test]
    fn recv_completes_at_arrival_not_post() {
        let mut p0 = Program::new();
        p0.push(Op::compute(2.0));
        p0.push(Op::send(1, 0, 8));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        // Receiver posts at t=0 but data only exists after t=2.
        assert!(r.finish_times[1] >= 2.0);
    }

    #[test]
    fn sendrecv_pair_exchanges_without_deadlock() {
        // Two ranks sendrecv large messages to each other — with plain
        // blocking rendezvous sends this would deadlock.
        let mk = |peer: usize| {
            let mut p = Program::new();
            p.push(Op::sendrecv(peer, 1 << 20, peer, 0));
            p
        };
        let r = run(vec![mk(1), mk(0)]);
        assert!(r.makespan > 0.0);
        assert!((r.finish_times[0] - r.finish_times[1]).abs() < 1e-9);
    }

    #[test]
    fn opposing_blocking_rendezvous_sends_deadlock() {
        let mk = |peer: usize| {
            let mut p = Program::new();
            p.push(Op::send(peer, 0, 1 << 20));
            p.push(Op::recv(peer, 0));
            p
        };
        let err = engine_for(vec![mk(1), mk(0)]).run().unwrap_err();
        assert!(matches!(err, SimError::Deadlock(_)));
    }

    #[test]
    fn deadlock_display_reports_all_blocked_ranks() {
        // An 11-rank cyclic rendezvous deadlock: the Display form
        // details the first 8 ranks and must say how many more are
        // blocked instead of silently truncating.
        let n = 11;
        let progs: Vec<Program> = (0..n)
            .map(|r| {
                let mut p = Program::new();
                p.push(Op::send((r + 1) % n, 0, 1 << 20));
                p.push(Op::recv((r + n - 1) % n, 0));
                p
            })
            .collect();
        let err = engine_for(progs).run().unwrap_err();
        let SimError::Deadlock(ref blocked) = err else {
            panic!("expected deadlock, got {err:?}");
        };
        assert_eq!(blocked.len(), n);
        let msg = err.to_string();
        assert!(
            msg.contains("and 3 more blocked ranks"),
            "truncated ranks not reported: {msg}"
        );
        // All 11 are still present in the payload, only the rendering
        // is summarized.
        assert!(msg.starts_with("deadlock: 11 rank(s) blocked"));
    }

    #[test]
    fn isend_wait_overlaps_compute() {
        let mut p0 = Program::new();
        p0.push(Op::isend(1, 0, 1 << 20, 0));
        p0.push(Op::compute(1.0));
        p0.push(Op::wait(0));
        let mut p1 = Program::new();
        p1.push(Op::irecv(0, 0, 0));
        p1.push(Op::compute(1.0));
        p1.push(Op::wait(0));
        let r = run(vec![p0, p1]);
        // Transfer overlaps the compute: finish ≈ 1.0 + wire, well under
        // the serialized 2.0 + wire.
        assert!(r.makespan < 1.5, "no overlap: makespan {}", r.makespan);
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        let mut progs = Vec::new();
        for r in 0..4 {
            let mut p = Program::new();
            p.push(Op::compute(r as f64));
            p.push(Op::Barrier);
            progs.push(p);
        }
        let r = run(progs);
        let slowest_entry = 3.0;
        for t in &r.finish_times {
            assert!(*t >= slowest_entry, "barrier exited early: {t}");
        }
        // All ranks leave the barrier at the same time.
        let t0 = r.finish_times[0];
        assert!(r.finish_times.iter().all(|t| (t - t0).abs() < 1e-12));
    }

    #[test]
    fn allreduce_result_time_scales_with_ranks() {
        let mk_progs = |n: usize| {
            (0..n)
                .map(|_| {
                    let mut p = Program::new();
                    p.push(Op::allreduce(8));
                    p
                })
                .collect::<Vec<_>>()
        };
        let t4 = run(mk_progs(4)).makespan;
        let t64 = run(mk_progs(64)).makespan;
        assert!(t64 > t4, "allreduce cost must grow with rank count");
    }

    #[test]
    fn extended_collectives_synchronize_and_cost() {
        let mk = |nranks: usize| -> Vec<Program> {
            (0..nranks)
                .map(|r| {
                    let mut p = Program::new();
                    p.push(Op::compute(0.001 * r as f64));
                    p.push(Op::bcast(0, 4096));
                    p.push(Op::reduce(0, 4096));
                    p.push(Op::allgather(1024));
                    p.push(Op::alltoall(256));
                    p
                })
                .collect()
        };
        let r = run(mk(8));
        // Collectives synchronize: finishing spread is only the cost
        // differences, not the initial skew.
        let t0 = r.finish_times[0];
        assert!(r.finish_times.iter().all(|t| (t - t0).abs() < 1e-12));
        // Cost grows with rank count for the linear collectives.
        let r32 = run(mk(32));
        assert!(r32.makespan > r.makespan);
        // Breakdown records the new kinds.
        let b = r.breakdown();
        assert!(b.fraction(EventKind::Allgather) > 0.0);
        assert!(b.fraction(EventKind::Alltoall) > 0.0);
    }

    #[test]
    fn bcast_root_out_of_range_rejected() {
        let mut p0 = Program::new();
        p0.push(Op::bcast(5, 8));
        let err = engine_for(vec![p0]).run().unwrap_err();
        assert!(matches!(err, SimError::RankOutOfRange { .. }));
    }

    #[test]
    fn collective_mismatch_detected() {
        let mut p0 = Program::new();
        p0.push(Op::Barrier);
        let mut p1 = Program::new();
        p1.push(Op::allreduce(8));
        let err = engine_for(vec![p0, p1]).run().unwrap_err();
        assert!(matches!(err, SimError::CollectiveMismatch { .. }));
    }

    #[test]
    fn rendezvous_chain_ripples() {
        // The minisweep pattern: all ranks send up first (open chain).
        // Rendezvous serializes the chain; makespan grows with length.
        let chain = |n: usize| {
            let progs: Vec<Program> = (0..n)
                .map(|r| {
                    let mut p = Program::new();
                    if r + 1 < n {
                        p.push(Op::send(r + 1, 0, 1 << 20));
                    }
                    if r > 0 {
                        p.push(Op::recv(r - 1, 0));
                    }
                    p
                })
                .collect();
            run(progs).makespan
        };
        let t4 = chain(4);
        let t16 = chain(16);
        assert!(t16 > 3.0 * t4, "serialization missing: t4={t4} t16={t16}");
    }

    #[test]
    fn trace_breakdown_identifies_recv_wait() {
        // Rank 1 waits 10 s in MPI_Recv for rank 0's late message.
        let mut p0 = Program::new();
        p0.push(Op::compute(10.0));
        p0.push(Op::send(1, 0, 8));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 0));
        p1.push(Op::compute(0.1));
        let progs = vec![p0, p1];
        let cluster = presets::cluster_a();
        let net = NetModel::compact(&cluster, progs.len());
        let cfg = SimConfig {
            trace: true,
            ..SimConfig::default()
        };
        let r = Engine::new(cfg, net, progs).run().unwrap();
        let b = r.timeline.rank_breakdown(1);
        assert_eq!(b.dominant_mpi(), Some(EventKind::Recv));
        assert!(b.fraction(EventKind::Recv) > 0.9);
    }

    #[test]
    fn byte_accounting_distinguishes_locality() {
        let cluster = presets::cluster_a();
        // 73 ranks: rank 72 is on node 1.
        let mut progs: Vec<Program> = (0..73).map(|_| Program::new()).collect();
        progs[0].push(Op::send(1, 0, 1000)); // intra-node
        progs[1].push(Op::recv(0, 0));
        progs[0].push(Op::send(72, 1, 500)); // inter-node
        progs[72].push(Op::recv(0, 1));
        let net = NetModel::compact(&cluster, 73);
        let r = Engine::new(SimConfig::default(), net, progs).run().unwrap();
        assert_eq!(r.p2p_bytes, 1500);
        assert_eq!(r.internode_bytes, 500);
    }

    #[test]
    fn out_of_range_rank_rejected() {
        let mut p0 = Program::new();
        p0.push(Op::send(5, 0, 8));
        let err = engine_for(vec![p0]).run().unwrap_err();
        assert!(matches!(err, SimError::RankOutOfRange { .. }));
    }

    #[test]
    fn invalid_program_rejected() {
        let mut p0 = Program::new();
        p0.push(Op::wait(3));
        let err = engine_for(vec![p0]).run().unwrap_err();
        assert!(matches!(err, SimError::InvalidProgram { .. }));
    }

    #[test]
    fn determinism_two_runs_identical() {
        let mk = || {
            let mut progs = Vec::new();
            for r in 0..8 {
                let mut p = Program::new();
                p.push(Op::compute(0.01 * (r + 1) as f64));
                p.push(Op::sendrecv((r + 1) % 8, 1 << 17, (r + 7) % 8, 0));
                p.push(Op::allreduce(64));
                progs.push(p);
            }
            progs
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a.finish_times, b.finish_times);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn tags_keep_channels_separate() {
        // Two messages with different tags received in reverse order.
        let mut p0 = Program::new();
        p0.push(Op::send(1, 7, 8));
        p0.push(Op::send(1, 9, 8));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 9));
        p1.push(Op::recv(0, 7));
        let r = run(vec![p0, p1]);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn user_request_ids_may_be_sparse() {
        // The slot-vector request table must cope with non-contiguous
        // user request ids.
        let mut p0 = Program::new();
        p0.push(Op::irecv(1, 0, 1000));
        p0.push(Op::wait(1000));
        let mut p1 = Program::new();
        p1.push(Op::send(0, 0, 64));
        let r = run(vec![p0, p1]);
        assert!(r.makespan > 0.0);
    }

    // ---------------------------------------------------------------
    // Online profile (the Fig.-2 / ITAC analog)
    // ---------------------------------------------------------------

    #[test]
    fn profile_populated_without_tracing() {
        // Default config: trace off, profile on.
        let mut p0 = Program::new();
        p0.push(Op::compute(10.0));
        p0.push(Op::send(1, 0, 8));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        assert!(r.timeline.events.is_empty(), "tracing must default off");
        let prof = &r.profile;
        assert!(prof.is_enabled());
        // Rank 0: 10 s compute plus the eager send overhead.
        assert!((prof.per_rank[0].compute_s - 10.0).abs() < 1e-12);
        // Rank 1 waited ~10 s for the late message.
        assert!(prof.per_rank[1].recv_wait_s > 9.0);
        assert!(prof.per_rank[1].comm_fraction() > 0.9);
        // The 8-byte message is in the eager histogram and the matrix.
        let eager = prof.regime_totals(Regime::Eager);
        let rdv = prof.regime_totals(Regime::Rendezvous);
        assert_eq!(eager.count, 1);
        assert_eq!(eager.bytes, 8);
        assert_eq!(rdv.count, 0);
        assert_eq!(prof.bytes_between(0, 1), 8);
        assert_eq!(prof.bytes_between(1, 0), 0);
    }

    #[test]
    fn profile_disabled_yields_empty() {
        let mut p0 = Program::new();
        p0.push(Op::compute(1.0));
        let cluster = presets::cluster_a();
        let net = NetModel::compact(&cluster, 1);
        let cfg = SimConfig {
            trace: false,
            profile: false,
            ..SimConfig::default()
        };
        let r = Engine::new(cfg, net, vec![p0]).run().unwrap();
        assert!(!r.profile.is_enabled());
        assert_eq!(r.profile, Profile::default());
    }

    #[test]
    fn profile_off_leaves_results_bit_identical() {
        // The no-op recorder instantiation must not perturb any other
        // output: timings, breakdowns and byte counters match the
        // profile-on run exactly.
        let mk = || {
            let mut progs = Vec::new();
            for r in 0..12usize {
                let mut p = Program::new();
                p.push(Op::compute(0.002 * (r + 1) as f64));
                p.push(Op::sendrecv((r + 1) % 12, 1 << 17, (r + 11) % 12, 0));
                p.push(Op::send((r + 3) % 12, 1, 128));
                p.push(Op::recv((r + 9) % 12, 1));
                p.push(Op::allreduce(256));
                progs.push(p);
            }
            progs
        };
        let cluster = presets::cluster_a();
        let run_cfg = |profile: bool| {
            let net = NetModel::compact(&cluster, 12);
            Engine::new(
                SimConfig {
                    trace: false,
                    profile,
                    ..SimConfig::default()
                },
                net,
                mk(),
            )
            .run()
            .unwrap()
        };
        let on = run_cfg(true);
        let off = run_cfg(false);
        assert_eq!(on.finish_times, off.finish_times);
        assert_eq!(on.per_rank_breakdown, off.per_rank_breakdown);
        assert_eq!(on.p2p_bytes, off.p2p_bytes);
        assert_eq!(on.internode_bytes, off.internode_bytes);
        assert!(on.profile.is_enabled());
        assert!(!off.profile.is_enabled());
    }

    #[test]
    fn profile_distinguishes_rendezvous_stall_from_recv_wait() {
        // Rank 0 posts a 1 MiB rendezvous send immediately; rank 1 only
        // posts the receive after 5 s of compute. The sender's blocked
        // time is a rendezvous stall, not a receive wait.
        let mut p0 = Program::new();
        p0.push(Op::send(1, 0, 1 << 20));
        let mut p1 = Program::new();
        p1.push(Op::compute(5.0));
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        let prof = &r.profile;
        assert!(prof.per_rank[0].rendezvous_stall_s > 4.0);
        assert_eq!(prof.per_rank[0].recv_wait_s, 0.0);
        assert_eq!(prof.per_rank[1].rendezvous_stall_s, 0.0);
        let eager = prof.regime_totals(Regime::Eager);
        let rdv = prof.regime_totals(Regime::Rendezvous);
        assert_eq!(eager.count, 0);
        assert_eq!(rdv.count, 1);
        assert_eq!(rdv.bytes, 1 << 20);
    }

    #[test]
    fn profile_attributes_collective_wait() {
        // Rank 0 arrives 3 s late at the barrier; rank 1's wait shows up
        // as collective time.
        let mut p0 = Program::new();
        p0.push(Op::compute(3.0));
        p0.push(Op::Barrier);
        let mut p1 = Program::new();
        p1.push(Op::Barrier);
        let r = run(vec![p0, p1]);
        assert!(r.profile.per_rank[1].collective_wait_s > 2.9);
        assert!(r.profile.per_rank[0].collective_wait_s < 0.5);
    }

    #[test]
    fn profile_agrees_with_trace_breakdown() {
        // The online recv-wait total must match what the full timeline
        // reports for the same run.
        let mut p0 = Program::new();
        p0.push(Op::compute(2.0));
        p0.push(Op::send(1, 0, 64));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 0));
        let progs = vec![p0, p1];
        let cluster = presets::cluster_a();
        let net = NetModel::compact(&cluster, progs.len());
        let cfg = SimConfig {
            trace: true,
            profile: true,
            ..SimConfig::default()
        };
        let r = Engine::new(cfg, net, progs).run().unwrap();
        let traced = r
            .timeline
            .rank_breakdown(1)
            .seconds
            .get(&EventKind::Recv)
            .copied()
            .unwrap_or(0.0);
        assert!((r.profile.per_rank[1].recv_wait_s - traced).abs() < 1e-12);
    }

    // ---------------------------------------------------------------
    // Edge cases: zero-byte messages, self-sends, odd rank counts
    // ---------------------------------------------------------------

    #[test]
    fn zero_byte_messages_deliver_and_profile() {
        let mut p0 = Program::new();
        p0.push(Op::send(1, 0, 0));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        assert!(r.makespan > 0.0, "latency still applies to empty payloads");
        let eager = r.profile.regime_totals(Regime::Eager);
        assert_eq!(eager.count, 1);
        assert_eq!(eager.bytes, 0);
        assert_eq!(r.profile.bytes_between(0, 1), 0);
        assert_eq!(r.p2p_bytes, 0);
    }

    #[test]
    fn eager_self_send_completes() {
        // MPI allows a rank to message itself; with an eager-sized
        // payload the blocking send completes locally and the receive
        // matches the queued message.
        let mut p0 = Program::new();
        p0.push(Op::send(0, 3, 128));
        p0.push(Op::recv(0, 3));
        p0.push(Op::compute(0.5));
        let r = run(vec![p0]);
        assert!(r.makespan >= 0.5);
        assert_eq!(r.profile.bytes_between(0, 0), 128);
        assert_eq!(r.internode_bytes, 0);
    }

    #[test]
    fn rendezvous_self_send_via_irecv() {
        // A rendezvous-sized self-send needs the receive pre-posted
        // (exactly like real MPI): irecv + send + wait.
        let mut p0 = Program::new();
        p0.push(Op::irecv(0, 0, 1));
        p0.push(Op::send(0, 0, 1 << 20));
        p0.push(Op::wait(1));
        let r = run(vec![p0]);
        assert!(r.makespan > 0.0);
        assert_eq!(r.profile.bytes_between(0, 0), 1 << 20);
    }

    #[test]
    fn collectives_at_non_power_of_two_ranks() {
        // p = 3, 6, 100: every collective must synchronize and finish.
        for &p in &[3usize, 6, 100] {
            let progs: Vec<Program> = (0..p)
                .map(|r| {
                    let mut prog = Program::new();
                    prog.push(Op::compute(0.001 * (r + 1) as f64));
                    prog.push(Op::Barrier);
                    prog.push(Op::allreduce(4096));
                    prog.push(Op::bcast(0, 1 << 16));
                    prog.push(Op::reduce(p - 1, 1 << 16));
                    prog.push(Op::allgather(512));
                    prog.push(Op::alltoall(256));
                    prog
                })
                .collect();
            let cluster = presets::cluster_a();
            let net = NetModel::compact(&cluster, p);
            let r = Engine::new(SimConfig::default(), net, progs)
                .run()
                .unwrap_or_else(|e| panic!("p={p}: {e:?}"));
            assert!(r.makespan.is_finite() && r.makespan > 0.0, "p={p}");
            // Everyone but the slowest entrant logged collective wait.
            let waits = r
                .profile
                .per_rank
                .iter()
                .filter(|ph| ph.collective_wait_s > 0.0)
                .count();
            assert!(waits >= p - 1, "p={p}: waits={waits}");
        }
    }

    // ---------------------------------------------------------------
    // Fault injection (see `crate::faults`)
    // ---------------------------------------------------------------

    use crate::faults::FaultEvent;

    fn faulted(progs: Vec<Program>, plan: FaultPlan) -> Result<SimResult, SimError> {
        let cluster = presets::cluster_a();
        let net = NetModel::compact(&cluster, progs.len());
        let cfg = SimConfig {
            faults: plan,
            ..SimConfig::default()
        };
        Engine::new(cfg, net, progs).run()
    }

    #[test]
    fn crash_aborts_run_blaming_rank() {
        let mut progs = Vec::new();
        for _ in 0..4 {
            let mut p = Program::new();
            for _ in 0..10 {
                p.push(Op::compute(0.1));
                p.push(Op::allreduce(64));
            }
            progs.push(p);
        }
        let plan = FaultPlan {
            seed: 1,
            events: vec![FaultEvent::Crash {
                rank: 2,
                at_s: 0.35,
            }],
        };
        let err = faulted(progs, plan).unwrap_err();
        let SimError::RankFailed { rank, at_s, .. } = err else {
            panic!("expected RankFailed, got {err:?}");
        };
        assert_eq!(rank, 2);
        assert!(at_s >= 0.35, "crash reported before its time: {at_s}");
    }

    #[test]
    fn crash_after_finish_is_benign() {
        let mut p0 = Program::new();
        p0.push(Op::compute(0.5));
        let plan = FaultPlan {
            seed: 1,
            events: vec![FaultEvent::Crash {
                rank: 0,
                at_s: 100.0,
            }],
        };
        let r = faulted(vec![p0], plan).unwrap();
        assert!((r.makespan - 0.5).abs() < 1e-12);
    }

    #[test]
    fn straggler_inflates_and_attributes_fault_stall() {
        let mk = || {
            let mut p = Program::new();
            p.push(Op::compute(1.0));
            p
        };
        let plan = FaultPlan {
            seed: 1,
            events: vec![FaultEvent::Straggler {
                rank: 0,
                slowdown: 2.0,
            }],
        };
        let r = faulted(vec![mk(), mk()], plan).unwrap();
        assert!((r.finish_times[0] - 2.0).abs() < 1e-12);
        assert!((r.finish_times[1] - 1.0).abs() < 1e-12);
        // The inflation is visible as fault stall, not as compute.
        assert!((r.profile.per_rank[0].fault_stall_s - 1.0).abs() < 1e-12);
        assert!((r.profile.per_rank[0].compute_s - 1.0).abs() < 1e-12);
        assert_eq!(r.profile.per_rank[1].fault_stall_s, 0.0);
        // The breakdown carries the full inflated compute time.
        assert!((r.per_rank_breakdown[0][EventKind::Compute.index()] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flaky_link_delays_messages_one_direction() {
        let mk = |r: usize| {
            let mut p = Program::new();
            if r == 0 {
                p.push(Op::send(1, 0, 8));
            } else {
                p.push(Op::recv(0, 0));
            }
            p
        };
        let plan = FaultPlan {
            seed: 3,
            events: vec![FaultEvent::FlakyLink {
                from: 0,
                to: 1,
                drop_prob: 0.999,
                retransmit_latency_s: 1.0,
            }],
        };
        let clean = faulted(vec![mk(0), mk(1)], FaultPlan::none()).unwrap();
        let dirty = faulted(vec![mk(0), mk(1)], plan).unwrap();
        // With p≈1 the first attempt virtually always retransmits, so
        // the receive completes at least one retransmit latency later.
        assert!(
            dirty.finish_times[1] >= clean.finish_times[1] + 1.0,
            "no retransmit delay: clean={} dirty={}",
            clean.finish_times[1],
            dirty.finish_times[1]
        );
        // The eager sender is unaffected (completes locally).
        assert!((dirty.finish_times[0] - clean.finish_times[0]).abs() < 1e-12);
    }

    #[test]
    fn empty_plan_through_fault_path_is_bit_identical() {
        // Force the ActiveFaults instantiation with an un-set cancel
        // token and an empty plan: every result must match the
        // zero-cost NoFaults path bit for bit.
        let mk = || {
            let mut progs = Vec::new();
            for r in 0..8usize {
                let mut p = Program::new();
                p.push(Op::compute(0.01 * (r + 1) as f64));
                p.push(Op::sendrecv((r + 1) % 8, 1 << 17, (r + 7) % 8, 0));
                p.push(Op::allreduce(64));
                progs.push(p);
            }
            progs
        };
        let cluster = presets::cluster_a();
        let fast = Engine::new(SimConfig::default(), NetModel::compact(&cluster, 8), mk())
            .run()
            .unwrap();
        let token = Arc::new(AtomicBool::new(false));
        let slow = Engine::new(SimConfig::default(), NetModel::compact(&cluster, 8), mk())
            .with_cancel(token)
            .run()
            .unwrap();
        assert_eq!(fast.finish_times, slow.finish_times);
        assert_eq!(fast.per_rank_breakdown, slow.per_rank_breakdown);
        assert_eq!(fast.profile, slow.profile);
        assert_eq!(fast.p2p_bytes, slow.p2p_bytes);
        assert_eq!(fast.internode_bytes, slow.internode_bytes);
    }

    #[test]
    fn pre_set_cancel_token_aborts_immediately() {
        let mut p0 = Program::new();
        p0.push(Op::compute(1.0));
        let cluster = presets::cluster_a();
        let net = NetModel::compact(&cluster, 1);
        let token = Arc::new(AtomicBool::new(true));
        let err = Engine::new(SimConfig::default(), net, vec![p0])
            .with_cancel(token)
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::Cancelled);
    }
}
