//! Deterministic discrete-event engine executing one [`Program`] per rank.
//!
//! ## Semantics
//!
//! * **Point-to-point matching** is FIFO per `(source, destination, tag)`
//!   channel (MPI non-overtaking rule).
//! * **Eager protocol** (below the interconnect's threshold): a send
//!   completes locally after the sender overhead `o`; the message arrives
//!   at `post + wire_time`; the receive completes at
//!   `max(recv_post, arrival)`.
//! * **Synchronous rendezvous** (at/above the threshold): sender and
//!   receiver hand-shake; the transfer starts at
//!   `max(send_post, recv_post)` and both sides complete at
//!   `start + wire_time`. This is the regime responsible for the
//!   minisweep serialization "ripple" of the paper (§4.1.5).
//! * **Collectives** are globally ordered per rank-local sequence number;
//!   every rank must execute the same sequence (mismatches are detected
//!   and reported). A collective completes for all ranks at
//!   `max(entry times) + algorithmic cost`.
//! * **Deadlocks** (cyclic rendezvous sends, missing matches) are
//!   detected: when no rank can make progress and not all are done, the
//!   engine reports which rank is stuck on which operation.
//!
//! The engine is deterministic: completion times depend only on the
//! programs and the network model, never on host scheduling.

use std::collections::{HashMap, VecDeque};

use crate::netmodel::NetModel;
use crate::profile::{Phase, Profile, Regime};
use crate::program::{Op, Program, ReqId};
use crate::trace::{EventKind, Timeline};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Record a full event timeline. Off by default — timelines hold
    /// one entry per executed op and dominate memory on large sweeps;
    /// the Fig. 2 insets and CSV export request tracing explicitly.
    pub trace: bool,
    /// Accumulate the online [`Profile`] (per-rank phase split,
    /// message-size histograms, rank×rank communication matrix). Cheap
    /// (O(ranks²) memory, O(1) per op) and on by default; works
    /// independently of `trace`.
    pub profile: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            trace: false,
            profile: true,
        }
    }
}

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No rank can make progress. Contains `(rank, op index, op)` for
    /// every blocked rank.
    Deadlock(Vec<(usize, usize, Op)>),
    /// Ranks disagree on the collective sequence.
    CollectiveMismatch {
        seq: usize,
        rank: usize,
        expected: &'static str,
        found: &'static str,
    },
    /// A program failed structural validation.
    InvalidProgram { rank: usize, reason: String },
    /// An op referenced a rank outside `0..nranks`.
    RankOutOfRange { rank: usize, op_index: usize },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(blocked) => {
                write!(f, "deadlock: {} rank(s) blocked", blocked.len())?;
                for (r, pc, op) in blocked.iter().take(8) {
                    write!(f, "; rank {r} at op {pc} ({op:?})")?;
                }
                Ok(())
            }
            SimError::CollectiveMismatch {
                seq,
                rank,
                expected,
                found,
            } => write!(
                f,
                "collective mismatch at sequence {seq}: rank {rank} called {found}, others {expected}"
            ),
            SimError::InvalidProgram { rank, reason } => {
                write!(f, "invalid program on rank {rank}: {reason}")
            }
            SimError::RankOutOfRange { rank, op_index } => {
                write!(f, "rank {rank} out of range at op {op_index}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a simulated run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Time at which the last rank finished (seconds).
    pub makespan: f64,
    /// Finish time of every rank.
    pub finish_times: Vec<f64>,
    /// Event timeline (empty if tracing was disabled).
    pub timeline: Timeline,
    /// Total point-to-point payload bytes moved.
    pub p2p_bytes: u64,
    /// Point-to-point payload bytes that crossed a node boundary.
    pub internode_bytes: u64,
    /// Per-rank time per event kind (indexed by [`EventKind::ALL`]
    /// order), accumulated online — available even without tracing.
    pub per_rank_breakdown: Vec<[f64; EventKind::COUNT]>,
    /// Online observability profile (empty if profiling was disabled).
    pub profile: Profile,
}

impl SimResult {
    /// Aggregate [`Breakdown`](crate::trace::Breakdown) over all ranks from the online counters.
    pub fn breakdown(&self) -> crate::trace::Breakdown {
        let mut b = crate::trace::Breakdown::default();
        for rank in &self.per_rank_breakdown {
            for (i, &kind) in EventKind::ALL.iter().enumerate() {
                if rank[i] > 0.0 {
                    *b.seconds.entry(kind).or_insert(0.0) += rank[i];
                    b.total += rank[i];
                }
            }
        }
        b
    }
}

/// Accumulate one interval into the online per-rank breakdown.
#[inline]
fn breakdown_add(
    breakdown: &mut [[f64; EventKind::COUNT]],
    rank: usize,
    kind: EventKind,
    dur: f64,
) {
    let idx = EventKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in ALL");
    breakdown[rank][idx] += dur;
}

/// Internal request id (separate namespace from user [`ReqId`]s).
type IReq = usize;

#[derive(Debug, Clone, Copy)]
enum ReqState {
    Pending,
    Completed(f64),
}

/// What an internal request stands for — used to attribute blocked time
/// to a [`Phase`] in the online profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqClass {
    EagerSend,
    RdvSend,
    Recv,
}

/// Map the eager-protocol decision onto the profile's [`Regime`].
fn regime_of(eager: bool) -> Regime {
    if eager {
        Regime::Eager
    } else {
        Regime::Rendezvous
    }
}

#[derive(Debug, Clone, Copy)]
struct SendPost {
    time: f64,
    bytes: usize,
    ireq: IReq,
    sender: usize,
}

#[derive(Debug, Clone, Copy)]
struct RecvPost {
    time: f64,
    ireq: IReq,
    receiver: usize,
}

#[derive(Debug, Default)]
struct Channel {
    sends: VecDeque<SendPost>,
    recvs: VecDeque<RecvPost>,
}

/// What a rank is currently blocked on.
#[derive(Debug, Clone)]
enum Blocked {
    /// Waiting for a set of internal requests; resumes at the max of
    /// their completion times (and not before `start`).
    Reqs {
        reqs: Vec<IReq>,
        kind: EventKind,
        start: f64,
    },
    /// Waiting inside collective number `seq`.
    Collective { start: f64 },
}

struct RankState {
    pc: usize,
    clock: f64,
    blocked: Option<Blocked>,
    done: bool,
    /// Internal request states.
    ireqs: Vec<ReqState>,
    /// Classification of each internal request, parallel to `ireqs`.
    ireq_class: Vec<ReqClass>,
    /// User request id → internal request id.
    user_reqs: HashMap<ReqId, IReq>,
    /// Rank-local collective sequence number.
    coll_seq: usize,
}

struct CollectiveEntry {
    event_kind: EventKind,
    bytes: usize,
    entries: Vec<(usize, f64)>,
    /// Completion time once all ranks have entered.
    finish: Option<f64>,
}

/// The discrete-event engine. See the module docs for semantics.
pub struct Engine {
    config: SimConfig,
    net: NetModel,
    programs: Vec<Program>,
}

impl Engine {
    pub fn new(config: SimConfig, net: NetModel, programs: Vec<Program>) -> Self {
        assert_eq!(
            net.nprocs(),
            programs.len(),
            "network model sized for {} ranks but {} programs given",
            net.nprocs(),
            programs.len()
        );
        Engine {
            config,
            net,
            programs,
        }
    }

    /// Execute the programs to completion.
    pub fn run(self) -> Result<SimResult, SimError> {
        let nranks = self.programs.len();
        for (rank, p) in self.programs.iter().enumerate() {
            p.validate()
                .map_err(|reason| SimError::InvalidProgram { rank, reason })?;
            for (op_index, op) in p.ops.iter().enumerate() {
                let peer = match op {
                    Op::Send { to, .. } | Op::Isend { to, .. } => Some(*to),
                    Op::Recv { from, .. } | Op::Irecv { from, .. } => Some(*from),
                    Op::Bcast { root, .. } | Op::Reduce { root, .. } => Some(*root),
                    Op::Sendrecv { to, from, .. } => {
                        if *to >= nranks {
                            return Err(SimError::RankOutOfRange {
                                rank: *to,
                                op_index,
                            });
                        }
                        Some(*from)
                    }
                    _ => None,
                };
                if let Some(p) = peer {
                    if p >= nranks {
                        return Err(SimError::RankOutOfRange { rank: p, op_index });
                    }
                }
            }
        }

        let mut ranks: Vec<RankState> = (0..nranks)
            .map(|_| RankState {
                pc: 0,
                clock: 0.0,
                blocked: None,
                done: false,
                ireqs: Vec::new(),
                ireq_class: Vec::new(),
                user_reqs: HashMap::new(),
                coll_seq: 0,
            })
            .collect();
        let mut channels: HashMap<(usize, usize, u32), Channel> = HashMap::new();
        let mut collectives: Vec<CollectiveEntry> = Vec::new();
        let mut timeline = Timeline::new(nranks);
        // Online per-rank breakdown (kept even when full tracing is off).
        let mut breakdown: Vec<[f64; EventKind::COUNT]> = vec![[0.0; EventKind::COUNT]; nranks];
        // Online observability profile (also trace-independent).
        let mut profile = if self.config.profile {
            Profile::new(nranks)
        } else {
            Profile::default()
        };
        let mut p2p_bytes: u64 = 0;
        let mut internode_bytes: u64 = 0;

        loop {
            let mut progressed = false;
            for r in 0..nranks {
                loop {
                    // Try to unblock (two-phase: immutable check first,
                    // then apply — avoids cloning the blocked state on
                    // every re-check, which dominates at scale).
                    if ranks[r].blocked.is_some() {
                        // Phase 1: decide.
                        let decision: Option<(f64, f64, EventKind, bool, Phase)> =
                            match ranks[r].blocked.as_ref().expect("checked") {
                                Blocked::Reqs { reqs, kind, start } => {
                                    let mut resume = *start;
                                    let mut all_done = true;
                                    for &ireq in reqs {
                                        match ranks[r].ireqs[ireq] {
                                            ReqState::Completed(t) => resume = resume.max(t),
                                            ReqState::Pending => {
                                                all_done = false;
                                                break;
                                            }
                                        }
                                    }
                                    // Attribute the blocked time: a
                                    // rendezvous send in the set means a
                                    // hand-shake stall; otherwise an
                                    // unfinished receive dominates (eager
                                    // sends complete in `o`).
                                    let phase = if reqs
                                        .iter()
                                        .any(|&q| ranks[r].ireq_class[q] == ReqClass::RdvSend)
                                    {
                                        Phase::RendezvousStall
                                    } else if reqs
                                        .iter()
                                        .any(|&q| ranks[r].ireq_class[q] == ReqClass::Recv)
                                    {
                                        Phase::RecvWait
                                    } else {
                                        Phase::EagerSend
                                    };
                                    all_done.then_some((*start, resume, *kind, false, phase))
                                }
                                Blocked::Collective { start } => {
                                    let entry = &collectives[ranks[r].coll_seq];
                                    entry.finish.map(|t| {
                                        (*start, t, entry.event_kind, true, Phase::CollectiveWait)
                                    })
                                }
                            };
                        // Phase 2: apply or stay blocked.
                        let Some((start, resume, kind, is_collective, phase)) = decision else {
                            break;
                        };
                        if self.config.trace {
                            timeline.record(r, start, resume, kind);
                        }
                        if resume > start {
                            breakdown_add(&mut breakdown, r, kind, resume - start);
                            if self.config.profile {
                                profile.record_phase(r, phase, resume - start);
                            }
                        }
                        ranks[r].clock = resume;
                        ranks[r].blocked = None;
                        if is_collective {
                            ranks[r].coll_seq += 1;
                        }
                        ranks[r].pc += 1;
                        progressed = true;
                        continue;
                    }

                    if ranks[r].done {
                        break;
                    }
                    if ranks[r].pc >= self.programs[r].ops.len() {
                        ranks[r].done = true;
                        progressed = true;
                        break;
                    }

                    let op = self.programs[r].ops[ranks[r].pc];
                    let clock = ranks[r].clock;
                    // Channel touched by this op, if any; only that
                    // channel can produce new matches.
                    let mut touched: [Option<(usize, usize, u32)>; 2] = [None, None];
                    match op {
                        Op::Compute { seconds } => {
                            if self.config.trace {
                                timeline.record(r, clock, clock + seconds, EventKind::Compute);
                            }
                            breakdown_add(&mut breakdown, r, EventKind::Compute, seconds);
                            if self.config.profile {
                                profile.record_phase(r, Phase::Compute, seconds);
                            }
                            ranks[r].clock += seconds;
                            ranks[r].pc += 1;
                        }
                        Op::Send { to, tag, bytes } => {
                            let eager = self.net.is_eager(bytes);
                            let ireq = Self::post_send(
                                &mut ranks[r],
                                &mut channels,
                                r,
                                to,
                                tag,
                                bytes,
                                clock,
                                eager,
                            );
                            touched[0] = Some((r, to, tag));
                            if eager {
                                // Eager sends complete locally after the
                                // sender overhead, receiver or not.
                                ranks[r].ireqs[ireq] =
                                    ReqState::Completed(clock + self.net.send_overhead);
                            }
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: vec![ireq],
                                kind: EventKind::Send,
                                start: clock,
                            });
                            if self.config.profile {
                                profile.record_message(r, to, bytes, regime_of(eager));
                            }
                            p2p_bytes += bytes as u64;
                            if !self.net.pinning().same_node(r, to) {
                                internode_bytes += bytes as u64;
                            }
                        }
                        Op::Recv { from, tag } => {
                            let ireq =
                                Self::post_recv(&mut ranks[r], &mut channels, from, r, tag, clock);
                            touched[0] = Some((from, r, tag));
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: vec![ireq],
                                kind: EventKind::Recv,
                                start: clock,
                            });
                        }
                        Op::Sendrecv {
                            to,
                            send_bytes,
                            from,
                            tag,
                        } => {
                            let eager = self.net.is_eager(send_bytes);
                            let s = Self::post_send(
                                &mut ranks[r],
                                &mut channels,
                                r,
                                to,
                                tag,
                                send_bytes,
                                clock,
                                eager,
                            );
                            let v =
                                Self::post_recv(&mut ranks[r], &mut channels, from, r, tag, clock);
                            touched[0] = Some((r, to, tag));
                            touched[1] = Some((from, r, tag));
                            if eager {
                                ranks[r].ireqs[s] =
                                    ReqState::Completed(clock + self.net.send_overhead);
                            }
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: vec![s, v],
                                kind: EventKind::Sendrecv,
                                start: clock,
                            });
                            if self.config.profile {
                                profile.record_message(r, to, send_bytes, regime_of(eager));
                            }
                            p2p_bytes += send_bytes as u64;
                            if !self.net.pinning().same_node(r, to) {
                                internode_bytes += send_bytes as u64;
                            }
                        }
                        Op::Isend {
                            to,
                            tag,
                            bytes,
                            req,
                        } => {
                            let eager = self.net.is_eager(bytes);
                            let ireq = Self::post_send(
                                &mut ranks[r],
                                &mut channels,
                                r,
                                to,
                                tag,
                                bytes,
                                clock,
                                eager,
                            );
                            touched[0] = Some((r, to, tag));
                            if eager {
                                ranks[r].ireqs[ireq] =
                                    ReqState::Completed(clock + self.net.send_overhead);
                            }
                            ranks[r].user_reqs.insert(req, ireq);
                            ranks[r].pc += 1;
                            if self.config.profile {
                                profile.record_message(r, to, bytes, regime_of(eager));
                            }
                            p2p_bytes += bytes as u64;
                            if !self.net.pinning().same_node(r, to) {
                                internode_bytes += bytes as u64;
                            }
                        }
                        Op::Irecv { from, tag, req } => {
                            let ireq =
                                Self::post_recv(&mut ranks[r], &mut channels, from, r, tag, clock);
                            touched[0] = Some((from, r, tag));
                            ranks[r].user_reqs.insert(req, ireq);
                            ranks[r].pc += 1;
                        }
                        Op::Wait { req } => {
                            let ireq = *ranks[r]
                                .user_reqs
                                .get(&req)
                                .expect("validated: wait follows creation");
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: vec![ireq],
                                kind: EventKind::Wait,
                                start: clock,
                            });
                        }
                        Op::Allreduce { .. }
                        | Op::Barrier
                        | Op::Bcast { .. }
                        | Op::Reduce { .. }
                        | Op::Allgather { .. }
                        | Op::Alltoall { .. } => {
                            let (kind, bytes) = match op {
                                Op::Allreduce { bytes } => (EventKind::Allreduce, bytes),
                                Op::Barrier => (EventKind::Barrier, 0),
                                Op::Bcast { bytes, .. } => (EventKind::Bcast, bytes),
                                Op::Reduce { bytes, .. } => (EventKind::Reduce, bytes),
                                Op::Allgather { bytes } => (EventKind::Allgather, bytes),
                                Op::Alltoall { bytes } => (EventKind::Alltoall, bytes),
                                _ => unreachable!(),
                            };
                            let seq = ranks[r].coll_seq;
                            Self::enter_collective(
                                &mut collectives,
                                seq,
                                kind,
                                bytes,
                                r,
                                clock,
                                nranks,
                                &self.net,
                            )?;
                            ranks[r].blocked = Some(Blocked::Collective { start: clock });
                        }
                    }

                    // Resolve any matches the op enabled on the touched
                    // channels; completions are delivered directly into
                    // the owning ranks' request tables.
                    for key in touched.into_iter().flatten() {
                        if let Some(ch) = channels.get_mut(&key) {
                            self.match_channel(ch, &mut ranks);
                        }
                    }
                    progressed = true;
                }
            }

            if ranks.iter().all(|s| s.done) {
                break;
            }
            if !progressed {
                let blocked = ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.done)
                    .map(|(r, s)| {
                        let pc = s.pc.min(self.programs[r].ops.len().saturating_sub(1));
                        (r, s.pc, self.programs[r].ops[pc])
                    })
                    .collect();
                return Err(SimError::Deadlock(blocked));
            }
        }

        let finish_times: Vec<f64> = ranks.iter().map(|s| s.clock).collect();
        let makespan = finish_times.iter().copied().fold(0.0, f64::max);
        Ok(SimResult {
            makespan,
            finish_times,
            timeline,
            p2p_bytes,
            internode_bytes,
            per_rank_breakdown: breakdown,
            profile,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn post_send(
        rank: &mut RankState,
        channels: &mut HashMap<(usize, usize, u32), Channel>,
        from: usize,
        to: usize,
        tag: u32,
        bytes: usize,
        time: f64,
        eager: bool,
    ) -> IReq {
        let ireq = rank.ireqs.len();
        rank.ireqs.push(ReqState::Pending);
        rank.ireq_class.push(if eager {
            ReqClass::EagerSend
        } else {
            ReqClass::RdvSend
        });
        channels
            .entry((from, to, tag))
            .or_default()
            .sends
            .push_back(SendPost {
                time,
                bytes,
                ireq,
                sender: from,
            });
        ireq
    }

    fn post_recv(
        rank: &mut RankState,
        channels: &mut HashMap<(usize, usize, u32), Channel>,
        from: usize,
        to: usize,
        tag: u32,
        time: f64,
    ) -> IReq {
        let ireq = rank.ireqs.len();
        rank.ireqs.push(ReqState::Pending);
        rank.ireq_class.push(ReqClass::Recv);
        channels
            .entry((from, to, tag))
            .or_default()
            .recvs
            .push_back(RecvPost {
                time,
                ireq,
                receiver: to,
            });
        ireq
    }

    /// Match pending send/recv pairs in one channel, delivering
    /// completions straight into the owning ranks' request tables.
    /// FIFO per channel preserves MPI's non-overtaking rule.
    fn match_channel(&self, ch: &mut Channel, ranks: &mut [RankState]) {
        while !ch.sends.is_empty() && !ch.recvs.is_empty() {
            let s = ch.sends.pop_front().expect("non-empty");
            let v = ch.recvs.pop_front().expect("non-empty");
            let wire = self.net.p2p_time(s.sender, v.receiver, s.bytes);
            if self.net.is_eager(s.bytes) {
                // The sender's completion was already issued at post time
                // (eager sends complete locally); only the receive side
                // completes here, at message arrival.
                let arrival = s.time + wire;
                let recv_done = v.time.max(arrival);
                ranks[v.receiver].ireqs[v.ireq] = ReqState::Completed(recv_done);
            } else {
                // Rendezvous: transfer starts when both are ready.
                let start = s.time.max(v.time);
                let done = start + wire;
                ranks[s.sender].ireqs[s.ireq] = ReqState::Completed(done);
                ranks[v.receiver].ireqs[v.ireq] = ReqState::Completed(done);
            }
        }
    }

    /// Name used in collective-mismatch diagnostics.
    fn collective_name(kind: EventKind) -> &'static str {
        match kind {
            EventKind::Allreduce => "Allreduce",
            EventKind::Barrier => "Barrier",
            EventKind::Bcast => "Bcast",
            EventKind::Reduce => "Reduce",
            EventKind::Allgather => "Allgather",
            EventKind::Alltoall => "Alltoall",
            _ => "?",
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enter_collective(
        collectives: &mut Vec<CollectiveEntry>,
        seq: usize,
        kind: EventKind,
        bytes: usize,
        rank: usize,
        time: f64,
        nranks: usize,
        net: &NetModel,
    ) -> Result<(), SimError> {
        if collectives.len() <= seq {
            collectives.push(CollectiveEntry {
                event_kind: kind,
                bytes,
                entries: Vec::with_capacity(nranks),
                finish: None,
            });
        }
        let entry = &mut collectives[seq];
        if entry.event_kind != kind {
            return Err(SimError::CollectiveMismatch {
                seq,
                rank,
                expected: Self::collective_name(entry.event_kind),
                found: Self::collective_name(kind),
            });
        }
        entry.bytes = entry.bytes.max(bytes);
        entry.entries.push((rank, time));
        if entry.entries.len() == nranks {
            let max_entry = entry.entries.iter().map(|&(_, t)| t).fold(0.0, f64::max);
            let cost = match entry.event_kind {
                EventKind::Barrier => net.barrier_cost(nranks),
                EventKind::Allreduce => net.allreduce_cost(nranks, entry.bytes),
                EventKind::Bcast => net.bcast_cost(nranks, entry.bytes),
                EventKind::Reduce => net.reduce_cost(nranks, entry.bytes),
                EventKind::Allgather => net.allgather_cost(nranks, entry.bytes),
                EventKind::Alltoall => net.alltoall_cost(nranks, entry.bytes),
                _ => 0.0,
            };
            entry.finish = Some(max_entry + cost);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Op, Program};
    use spechpc_machine::presets;

    fn engine_for(progs: Vec<Program>) -> Engine {
        let cluster = presets::cluster_a();
        let net = NetModel::compact(&cluster, progs.len());
        Engine::new(SimConfig::default(), net, progs)
    }

    fn run(progs: Vec<Program>) -> SimResult {
        engine_for(progs).run().expect("simulation must succeed")
    }

    #[test]
    fn pure_compute_runs_independently() {
        let mut p0 = Program::new();
        p0.push(Op::compute(1.0));
        let mut p1 = Program::new();
        p1.push(Op::compute(2.0));
        let r = run(vec![p0, p1]);
        assert!((r.finish_times[0] - 1.0).abs() < 1e-12);
        assert!((r.finish_times[1] - 2.0).abs() < 1e-12);
        assert!((r.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eager_send_does_not_wait_for_receiver() {
        // Rank 0 sends a tiny message then computes; rank 1 computes for
        // a long time before receiving. Eager: sender is not delayed.
        let mut p0 = Program::new();
        p0.push(Op::send(1, 0, 8));
        p0.push(Op::compute(1.0));
        let mut p1 = Program::new();
        p1.push(Op::compute(5.0));
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        assert!(
            r.finish_times[0] < 1.1,
            "eager sender delayed: {:?}",
            r.finish_times
        );
        assert!(r.finish_times[1] >= 5.0);
    }

    #[test]
    fn rendezvous_send_blocks_until_recv_posted() {
        // 2 MiB is above the 64 KiB eager threshold.
        let mut p0 = Program::new();
        p0.push(Op::send(1, 0, 2 << 20));
        let mut p1 = Program::new();
        p1.push(Op::compute(3.0));
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        // Sender cannot finish before the receiver posts at t=3.
        assert!(
            r.finish_times[0] >= 3.0,
            "rendezvous not enforced: {:?}",
            r.finish_times
        );
    }

    #[test]
    fn recv_completes_at_arrival_not_post() {
        let mut p0 = Program::new();
        p0.push(Op::compute(2.0));
        p0.push(Op::send(1, 0, 8));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        // Receiver posts at t=0 but data only exists after t=2.
        assert!(r.finish_times[1] >= 2.0);
    }

    #[test]
    fn sendrecv_pair_exchanges_without_deadlock() {
        // Two ranks sendrecv large messages to each other — with plain
        // blocking rendezvous sends this would deadlock.
        let mk = |peer: usize| {
            let mut p = Program::new();
            p.push(Op::sendrecv(peer, 1 << 20, peer, 0));
            p
        };
        let r = run(vec![mk(1), mk(0)]);
        assert!(r.makespan > 0.0);
        assert!((r.finish_times[0] - r.finish_times[1]).abs() < 1e-9);
    }

    #[test]
    fn opposing_blocking_rendezvous_sends_deadlock() {
        let mk = |peer: usize| {
            let mut p = Program::new();
            p.push(Op::send(peer, 0, 1 << 20));
            p.push(Op::recv(peer, 0));
            p
        };
        let err = engine_for(vec![mk(1), mk(0)]).run().unwrap_err();
        assert!(matches!(err, SimError::Deadlock(_)));
    }

    #[test]
    fn isend_wait_overlaps_compute() {
        let mut p0 = Program::new();
        p0.push(Op::isend(1, 0, 1 << 20, 0));
        p0.push(Op::compute(1.0));
        p0.push(Op::wait(0));
        let mut p1 = Program::new();
        p1.push(Op::irecv(0, 0, 0));
        p1.push(Op::compute(1.0));
        p1.push(Op::wait(0));
        let r = run(vec![p0, p1]);
        // Transfer overlaps the compute: finish ≈ 1.0 + wire, well under
        // the serialized 2.0 + wire.
        assert!(r.makespan < 1.5, "no overlap: makespan {}", r.makespan);
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        let mut progs = Vec::new();
        for r in 0..4 {
            let mut p = Program::new();
            p.push(Op::compute(r as f64));
            p.push(Op::Barrier);
            progs.push(p);
        }
        let r = run(progs);
        let slowest_entry = 3.0;
        for t in &r.finish_times {
            assert!(*t >= slowest_entry, "barrier exited early: {t}");
        }
        // All ranks leave the barrier at the same time.
        let t0 = r.finish_times[0];
        assert!(r.finish_times.iter().all(|t| (t - t0).abs() < 1e-12));
    }

    #[test]
    fn allreduce_result_time_scales_with_ranks() {
        let mk_progs = |n: usize| {
            (0..n)
                .map(|_| {
                    let mut p = Program::new();
                    p.push(Op::allreduce(8));
                    p
                })
                .collect::<Vec<_>>()
        };
        let t4 = run(mk_progs(4)).makespan;
        let t64 = run(mk_progs(64)).makespan;
        assert!(t64 > t4, "allreduce cost must grow with rank count");
    }

    #[test]
    fn extended_collectives_synchronize_and_cost() {
        let mk = |nranks: usize| -> Vec<Program> {
            (0..nranks)
                .map(|r| {
                    let mut p = Program::new();
                    p.push(Op::compute(0.001 * r as f64));
                    p.push(Op::bcast(0, 4096));
                    p.push(Op::reduce(0, 4096));
                    p.push(Op::allgather(1024));
                    p.push(Op::alltoall(256));
                    p
                })
                .collect()
        };
        let r = run(mk(8));
        // Collectives synchronize: finishing spread is only the cost
        // differences, not the initial skew.
        let t0 = r.finish_times[0];
        assert!(r.finish_times.iter().all(|t| (t - t0).abs() < 1e-12));
        // Cost grows with rank count for the linear collectives.
        let r32 = run(mk(32));
        assert!(r32.makespan > r.makespan);
        // Breakdown records the new kinds.
        let b = r.breakdown();
        assert!(b.fraction(EventKind::Allgather) > 0.0);
        assert!(b.fraction(EventKind::Alltoall) > 0.0);
    }

    #[test]
    fn bcast_root_out_of_range_rejected() {
        let mut p0 = Program::new();
        p0.push(Op::bcast(5, 8));
        let err = engine_for(vec![p0]).run().unwrap_err();
        assert!(matches!(err, SimError::RankOutOfRange { .. }));
    }

    #[test]
    fn collective_mismatch_detected() {
        let mut p0 = Program::new();
        p0.push(Op::Barrier);
        let mut p1 = Program::new();
        p1.push(Op::allreduce(8));
        let err = engine_for(vec![p0, p1]).run().unwrap_err();
        assert!(matches!(err, SimError::CollectiveMismatch { .. }));
    }

    #[test]
    fn rendezvous_chain_ripples() {
        // The minisweep pattern: all ranks send up first (open chain).
        // Rendezvous serializes the chain; makespan grows with length.
        let chain = |n: usize| {
            let progs: Vec<Program> = (0..n)
                .map(|r| {
                    let mut p = Program::new();
                    if r + 1 < n {
                        p.push(Op::send(r + 1, 0, 1 << 20));
                    }
                    if r > 0 {
                        p.push(Op::recv(r - 1, 0));
                    }
                    p
                })
                .collect();
            run(progs).makespan
        };
        let t4 = chain(4);
        let t16 = chain(16);
        assert!(t16 > 3.0 * t4, "serialization missing: t4={t4} t16={t16}");
    }

    #[test]
    fn trace_breakdown_identifies_recv_wait() {
        // Rank 1 waits 10 s in MPI_Recv for rank 0's late message.
        let mut p0 = Program::new();
        p0.push(Op::compute(10.0));
        p0.push(Op::send(1, 0, 8));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 0));
        p1.push(Op::compute(0.1));
        let progs = vec![p0, p1];
        let cluster = presets::cluster_a();
        let net = NetModel::compact(&cluster, progs.len());
        let cfg = SimConfig {
            trace: true,
            ..SimConfig::default()
        };
        let r = Engine::new(cfg, net, progs).run().unwrap();
        let b = r.timeline.rank_breakdown(1);
        assert_eq!(b.dominant_mpi(), Some(EventKind::Recv));
        assert!(b.fraction(EventKind::Recv) > 0.9);
    }

    #[test]
    fn byte_accounting_distinguishes_locality() {
        let cluster = presets::cluster_a();
        // 73 ranks: rank 72 is on node 1.
        let mut progs: Vec<Program> = (0..73).map(|_| Program::new()).collect();
        progs[0].push(Op::send(1, 0, 1000)); // intra-node
        progs[1].push(Op::recv(0, 0));
        progs[0].push(Op::send(72, 1, 500)); // inter-node
        progs[72].push(Op::recv(0, 1));
        let net = NetModel::compact(&cluster, 73);
        let r = Engine::new(SimConfig::default(), net, progs).run().unwrap();
        assert_eq!(r.p2p_bytes, 1500);
        assert_eq!(r.internode_bytes, 500);
    }

    #[test]
    fn out_of_range_rank_rejected() {
        let mut p0 = Program::new();
        p0.push(Op::send(5, 0, 8));
        let err = engine_for(vec![p0]).run().unwrap_err();
        assert!(matches!(err, SimError::RankOutOfRange { .. }));
    }

    #[test]
    fn invalid_program_rejected() {
        let mut p0 = Program::new();
        p0.push(Op::wait(3));
        let err = engine_for(vec![p0]).run().unwrap_err();
        assert!(matches!(err, SimError::InvalidProgram { .. }));
    }

    #[test]
    fn determinism_two_runs_identical() {
        let mk = || {
            let mut progs = Vec::new();
            for r in 0..8 {
                let mut p = Program::new();
                p.push(Op::compute(0.01 * (r + 1) as f64));
                p.push(Op::sendrecv((r + 1) % 8, 1 << 17, (r + 7) % 8, 0));
                p.push(Op::allreduce(64));
                progs.push(p);
            }
            progs
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a.finish_times, b.finish_times);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn tags_keep_channels_separate() {
        // Two messages with different tags received in reverse order.
        let mut p0 = Program::new();
        p0.push(Op::send(1, 7, 8));
        p0.push(Op::send(1, 9, 8));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 9));
        p1.push(Op::recv(0, 7));
        let r = run(vec![p0, p1]);
        assert!(r.makespan > 0.0);
    }

    // ---------------------------------------------------------------
    // Online profile (the Fig.-2 / ITAC analog)
    // ---------------------------------------------------------------

    #[test]
    fn profile_populated_without_tracing() {
        // Default config: trace off, profile on.
        let mut p0 = Program::new();
        p0.push(Op::compute(10.0));
        p0.push(Op::send(1, 0, 8));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        assert!(r.timeline.events.is_empty(), "tracing must default off");
        let prof = &r.profile;
        assert!(prof.is_enabled());
        // Rank 0: 10 s compute plus the eager send overhead.
        assert!((prof.per_rank[0].compute_s - 10.0).abs() < 1e-12);
        // Rank 1 waited ~10 s for the late message.
        assert!(prof.per_rank[1].recv_wait_s > 9.0);
        assert!(prof.per_rank[1].comm_fraction() > 0.9);
        // The 8-byte message is in the eager histogram and the matrix.
        let eager = prof.regime_totals(Regime::Eager);
        let rdv = prof.regime_totals(Regime::Rendezvous);
        assert_eq!(eager.count, 1);
        assert_eq!(eager.bytes, 8);
        assert_eq!(rdv.count, 0);
        assert_eq!(prof.bytes_between(0, 1), 8);
        assert_eq!(prof.bytes_between(1, 0), 0);
    }

    #[test]
    fn profile_disabled_yields_empty() {
        let mut p0 = Program::new();
        p0.push(Op::compute(1.0));
        let cluster = presets::cluster_a();
        let net = NetModel::compact(&cluster, 1);
        let cfg = SimConfig {
            trace: false,
            profile: false,
        };
        let r = Engine::new(cfg, net, vec![p0]).run().unwrap();
        assert!(!r.profile.is_enabled());
        assert_eq!(r.profile, Profile::default());
    }

    #[test]
    fn profile_distinguishes_rendezvous_stall_from_recv_wait() {
        // Rank 0 posts a 1 MiB rendezvous send immediately; rank 1 only
        // posts the receive after 5 s of compute. The sender's blocked
        // time is a rendezvous stall, not a receive wait.
        let mut p0 = Program::new();
        p0.push(Op::send(1, 0, 1 << 20));
        let mut p1 = Program::new();
        p1.push(Op::compute(5.0));
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        let prof = &r.profile;
        assert!(prof.per_rank[0].rendezvous_stall_s > 4.0);
        assert_eq!(prof.per_rank[0].recv_wait_s, 0.0);
        assert_eq!(prof.per_rank[1].rendezvous_stall_s, 0.0);
        let eager = prof.regime_totals(Regime::Eager);
        let rdv = prof.regime_totals(Regime::Rendezvous);
        assert_eq!(eager.count, 0);
        assert_eq!(rdv.count, 1);
        assert_eq!(rdv.bytes, 1 << 20);
    }

    #[test]
    fn profile_attributes_collective_wait() {
        // Rank 0 arrives 3 s late at the barrier; rank 1's wait shows up
        // as collective time.
        let mut p0 = Program::new();
        p0.push(Op::compute(3.0));
        p0.push(Op::Barrier);
        let mut p1 = Program::new();
        p1.push(Op::Barrier);
        let r = run(vec![p0, p1]);
        assert!(r.profile.per_rank[1].collective_wait_s > 2.9);
        assert!(r.profile.per_rank[0].collective_wait_s < 0.5);
    }

    #[test]
    fn profile_agrees_with_trace_breakdown() {
        // The online recv-wait total must match what the full timeline
        // reports for the same run.
        let mut p0 = Program::new();
        p0.push(Op::compute(2.0));
        p0.push(Op::send(1, 0, 64));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 0));
        let progs = vec![p0, p1];
        let cluster = presets::cluster_a();
        let net = NetModel::compact(&cluster, progs.len());
        let cfg = SimConfig {
            trace: true,
            profile: true,
        };
        let r = Engine::new(cfg, net, progs).run().unwrap();
        let traced = r
            .timeline
            .rank_breakdown(1)
            .seconds
            .get(&EventKind::Recv)
            .copied()
            .unwrap_or(0.0);
        assert!((r.profile.per_rank[1].recv_wait_s - traced).abs() < 1e-12);
    }

    // ---------------------------------------------------------------
    // Edge cases: zero-byte messages, self-sends, odd rank counts
    // ---------------------------------------------------------------

    #[test]
    fn zero_byte_messages_deliver_and_profile() {
        let mut p0 = Program::new();
        p0.push(Op::send(1, 0, 0));
        let mut p1 = Program::new();
        p1.push(Op::recv(0, 0));
        let r = run(vec![p0, p1]);
        assert!(r.makespan > 0.0, "latency still applies to empty payloads");
        let eager = r.profile.regime_totals(Regime::Eager);
        assert_eq!(eager.count, 1);
        assert_eq!(eager.bytes, 0);
        assert_eq!(r.profile.bytes_between(0, 1), 0);
        assert_eq!(r.p2p_bytes, 0);
    }

    #[test]
    fn eager_self_send_completes() {
        // MPI allows a rank to message itself; with an eager-sized
        // payload the blocking send completes locally and the receive
        // matches the queued message.
        let mut p0 = Program::new();
        p0.push(Op::send(0, 3, 128));
        p0.push(Op::recv(0, 3));
        p0.push(Op::compute(0.5));
        let r = run(vec![p0]);
        assert!(r.makespan >= 0.5);
        assert_eq!(r.profile.bytes_between(0, 0), 128);
        assert_eq!(r.internode_bytes, 0);
    }

    #[test]
    fn rendezvous_self_send_via_irecv() {
        // A rendezvous-sized self-send needs the receive pre-posted
        // (exactly like real MPI): irecv + send + wait.
        let mut p0 = Program::new();
        p0.push(Op::irecv(0, 0, 1));
        p0.push(Op::send(0, 0, 1 << 20));
        p0.push(Op::wait(1));
        let r = run(vec![p0]);
        assert!(r.makespan > 0.0);
        assert_eq!(r.profile.bytes_between(0, 0), 1 << 20);
    }

    #[test]
    fn collectives_at_non_power_of_two_ranks() {
        // p = 3, 6, 100: every collective must synchronize and finish.
        for &p in &[3usize, 6, 100] {
            let progs: Vec<Program> = (0..p)
                .map(|r| {
                    let mut prog = Program::new();
                    prog.push(Op::compute(0.001 * (r + 1) as f64));
                    prog.push(Op::Barrier);
                    prog.push(Op::allreduce(4096));
                    prog.push(Op::bcast(0, 1 << 16));
                    prog.push(Op::reduce(p - 1, 1 << 16));
                    prog.push(Op::allgather(512));
                    prog.push(Op::alltoall(256));
                    prog
                })
                .collect();
            let cluster = presets::cluster_a();
            let net = NetModel::compact(&cluster, p);
            let r = Engine::new(SimConfig::default(), net, progs)
                .run()
                .unwrap_or_else(|e| panic!("p={p}: {e:?}"));
            assert!(r.makespan.is_finite() && r.makespan > 0.0, "p={p}");
            // Everyone but the slowest entrant logged collective wait.
            let waits = r
                .profile
                .per_rank
                .iter()
                .filter(|ph| ph.collective_wait_s > 0.0)
                .count();
            assert!(waits >= p - 1, "p={p}: waits={waits}");
        }
    }
}
