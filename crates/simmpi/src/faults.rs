//! Seeded, deterministic fault injection.
//!
//! The paper's measurements (and its companion variability studies in
//! PAPERS.md) live on real clusters: OS noise perturbs compute phases,
//! individual nodes straggle or get power-capped, links degrade and
//! retransmit, ranks die. A [`FaultPlan`] expresses those scenarios as
//! a list of seeded, reproducible [`FaultEvent`]s that the engine
//! weaves into a run:
//!
//! * **OS noise** — per-op compute-time inflation drawn from a
//!   stateless hash of `(seed, rank, pc)`, so the same plan + seed
//!   reproduces the same jitter bit for bit regardless of host
//!   scheduling or simulation visiting order,
//! * **stragglers** — a constant multiplicative slowdown of one rank's
//!   compute phases (a slow node, a busy neighbor),
//! * **flaky links** — per-message retransmission latency on a
//!   directed rank pair, decided by a stateless hash of the message's
//!   (program-order deterministic) request id,
//! * **throttle windows** — a compute slowdown active inside a
//!   `[t_start, t_end)` simulated-time window, the thermal/power-cap
//!   analog (the harness converts a frequency cap into the factor via
//!   `power::dvfs`),
//! * **crashes** — a hard rank failure at a simulated time; the run
//!   aborts with [`SimError::RankFailed`](crate::engine::SimError)
//!   blaming the rank (MPI-abort semantics).
//!
//! ## Determinism contract
//!
//! Every fault decision is a pure function of `(plan, seed)` and
//! program-order-deterministic quantities (rank id, program counter,
//! request arena index). No global RNG state is threaded through the
//! scheduler, so results are independent of the ready-queue visiting
//! order — the same property the fault-free engine guarantees.
//!
//! ## Zero-cost off path
//!
//! The engine is monomorphized over a fault hook exactly like its
//! profile/trace sinks: with [`FaultPlan::none()`] the hook compiles
//! to nothing and `SimResult` is bit-identical to a build without the
//! subsystem (pinned by the golden fingerprints in
//! `tests/prop_engine.rs`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which ranks an event applies to.
#[derive(Debug, Clone, PartialEq)]
pub enum RankSet {
    /// Every rank of the run.
    All,
    /// A single rank.
    One(usize),
    /// An explicit list of ranks.
    List(Vec<usize>),
}

impl RankSet {
    /// Whether `rank` belongs to the set.
    pub fn contains(&self, rank: usize) -> bool {
        match self {
            RankSet::All => true,
            RankSet::One(r) => *r == rank,
            RankSet::List(rs) => rs.contains(&rank),
        }
    }

    fn canonical(&self) -> String {
        match self {
            RankSet::All => "*".to_string(),
            RankSet::One(r) => r.to_string(),
            RankSet::List(rs) => rs
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("+"),
        }
    }
}

/// One seeded fault event. Events referencing ranks outside the run's
/// `0..nranks` simply never fire (a plan written for 16 ranks is valid
/// on an 8-rank run), so one plan can drive a whole suite sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Inflate every compute phase of the ranks by a per-op factor in
    /// `[1, 1 + amplitude)`, drawn from `hash(seed, rank, pc)`.
    OsNoise { ranks: RankSet, amplitude: f64 },
    /// Multiply every compute phase of one rank by a constant factor
    /// (`slowdown >= 1`).
    Straggler { rank: usize, slowdown: f64 },
    /// Degrade the directed link `from → to`: each message on it
    /// retransmits with probability `drop_prob` (geometrically, capped),
    /// adding `retransmit_latency_s` per retransmission to its wire time.
    FlakyLink {
        from: usize,
        to: usize,
        drop_prob: f64,
        retransmit_latency_s: f64,
    },
    /// Multiply compute phases of the ranks by `slowdown` while the
    /// rank's clock is inside `[t_start_s, t_end_s)` — the
    /// thermal/power-cap throttling analog.
    Throttle {
        ranks: RankSet,
        t_start_s: f64,
        t_end_s: f64,
        slowdown: f64,
    },
    /// Hard-kill one rank at a simulated time: the run aborts with
    /// `SimError::RankFailed` when the rank's clock reaches `at_s`.
    Crash { rank: usize, at_s: f64 },
}

impl FaultEvent {
    fn canonical(&self) -> String {
        match self {
            FaultEvent::OsNoise { ranks, amplitude } => {
                format!("osnoise(ranks={},amp={:?})", ranks.canonical(), amplitude)
            }
            FaultEvent::Straggler { rank, slowdown } => {
                format!("straggler(rank={rank},x={slowdown:?})")
            }
            FaultEvent::FlakyLink {
                from,
                to,
                drop_prob,
                retransmit_latency_s,
            } => format!("flaky(from={from},to={to},p={drop_prob:?},rtx={retransmit_latency_s:?})"),
            FaultEvent::Throttle {
                ranks,
                t_start_s,
                t_end_s,
                slowdown,
            } => format!(
                "throttle(ranks={},t0={:?},t1={:?},x={:?})",
                ranks.canonical(),
                t_start_s,
                t_end_s,
                slowdown
            ),
            FaultEvent::Crash { rank, at_s } => format!("crash(rank={rank},at={at_s:?})"),
        }
    }
}

/// A seeded, reproducible fault schedule: the `(seed, events)` pair
/// fully determines every injected perturbation.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of every stateless fault decision.
    pub seed: u64,
    /// The events, applied in order (multiplicative effects compose).
    pub events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan — selects the engine's zero-cost off path.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.events.is_empty()
    }

    /// Canonical string of the plan — stable across runs, used for
    /// cache keying and the `spechpc faults` report. `{:?}` float
    /// formatting round-trips exactly, so distinct plans never collide.
    pub fn canonical(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        let mut s = format!("seed={}", self.seed);
        for e in &self.events {
            s.push('|');
            s.push_str(&e.canonical());
        }
        s
    }

    /// Structural validation (parameter ranges only; rank ids are
    /// checked against nothing because one plan may serve runs of many
    /// sizes). Returns a human-readable reason on the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            let bad = |reason: String| Err(format!("event {i}: {reason}"));
            match e {
                FaultEvent::OsNoise { amplitude, .. } => {
                    if !amplitude.is_finite() || *amplitude < 0.0 {
                        return bad(format!("osnoise amplitude {amplitude} must be finite >= 0"));
                    }
                }
                FaultEvent::Straggler { slowdown, .. } => {
                    if !slowdown.is_finite() || *slowdown < 1.0 {
                        return bad(format!("straggler slowdown {slowdown} must be finite >= 1"));
                    }
                }
                FaultEvent::FlakyLink {
                    drop_prob,
                    retransmit_latency_s,
                    ..
                } => {
                    if drop_prob.is_nan() || *drop_prob < 0.0 || *drop_prob >= 1.0 {
                        return bad(format!(
                            "flaky-link drop_prob {drop_prob} must be in [0, 1)"
                        ));
                    }
                    if !retransmit_latency_s.is_finite() || *retransmit_latency_s < 0.0 {
                        return bad(format!(
                            "flaky-link retransmit latency {retransmit_latency_s} must be finite >= 0"
                        ));
                    }
                }
                FaultEvent::Throttle {
                    t_start_s,
                    t_end_s,
                    slowdown,
                    ..
                } => {
                    if !slowdown.is_finite() || *slowdown < 1.0 {
                        return bad(format!("throttle slowdown {slowdown} must be finite >= 1"));
                    }
                    if t_start_s.is_nan()
                        || t_end_s.is_nan()
                        || *t_end_s <= *t_start_s
                        || *t_start_s < 0.0
                    {
                        return bad(format!(
                            "throttle window [{t_start_s}, {t_end_s}) must be non-empty and start >= 0"
                        ));
                    }
                }
                FaultEvent::Crash { at_s, .. } => {
                    if !at_s.is_finite() || *at_s < 0.0 {
                        return bad(format!("crash time {at_s} must be finite >= 0"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Upper bound on retransmissions of a single message — keeps
/// pathological `drop_prob` values from stalling a link forever.
const MAX_RETRANSMITS: u32 = 16;

/// splitmix64 finalizer — the stateless mixer behind every fault
/// decision.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to a uniform f64 in `[0, 1)` (top 53 bits).
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Domain-separation salts so the noise and link streams never alias.
const SALT_NOISE: u64 = 0x006e_6f69_7365; // "noise"
const SALT_LINK: u64 = 0x6c69_6e6b; // "link"

/// A [`FaultPlan`] compiled against a concrete rank count: per-rank
/// lookup tables the engine's hot path reads directly, plus an
/// optional cooperative-cancellation token (the harness's per-run
/// timeout sets it from another thread).
#[derive(Debug, Clone)]
pub struct ActiveFaults {
    seed: u64,
    /// Constant compute slowdown per rank (stragglers, composed).
    slowdown: Vec<f64>,
    /// Noise amplitude per rank (max over events; 0 = quiet).
    noise_amp: Vec<f64>,
    /// Crash time per rank (`INFINITY` = never).
    crash_at: Vec<f64>,
    /// Throttle windows per rank: `(t_start, t_end, factor)`.
    throttle: Vec<Vec<(f64, f64, f64)>>,
    /// Degraded directed links: `(from, to) → (drop_prob, retransmit_latency_s)`.
    links: HashMap<(usize, usize), (f64, f64)>,
    /// Cooperative cancellation flag, polled at op granularity.
    cancel: Option<Arc<AtomicBool>>,
}

impl ActiveFaults {
    /// Compile `plan` for a run of `nranks` ranks. Events referencing
    /// out-of-range ranks are dropped here (see [`FaultEvent`]).
    pub fn compile(plan: &FaultPlan, nranks: usize, cancel: Option<Arc<AtomicBool>>) -> Self {
        let mut af = ActiveFaults {
            seed: plan.seed,
            slowdown: vec![1.0; nranks],
            noise_amp: vec![0.0; nranks],
            crash_at: vec![f64::INFINITY; nranks],
            throttle: vec![Vec::new(); nranks],
            links: HashMap::new(),
            cancel,
        };
        for e in &plan.events {
            match e {
                FaultEvent::OsNoise { ranks, amplitude } => {
                    for (r, amp) in af.noise_amp.iter_mut().enumerate() {
                        if ranks.contains(r) {
                            *amp = amp.max(*amplitude);
                        }
                    }
                }
                FaultEvent::Straggler { rank, slowdown } => {
                    if *rank < nranks {
                        af.slowdown[*rank] *= slowdown;
                    }
                }
                FaultEvent::FlakyLink {
                    from,
                    to,
                    drop_prob,
                    retransmit_latency_s,
                } => {
                    if *from < nranks && *to < nranks {
                        af.links
                            .insert((*from, *to), (*drop_prob, *retransmit_latency_s));
                    }
                }
                FaultEvent::Throttle {
                    ranks,
                    t_start_s,
                    t_end_s,
                    slowdown,
                } => {
                    for (r, wins) in af.throttle.iter_mut().enumerate() {
                        if ranks.contains(r) {
                            wins.push((*t_start_s, *t_end_s, *slowdown));
                        }
                    }
                }
                FaultEvent::Crash { rank, at_s } => {
                    if *rank < nranks {
                        af.crash_at[*rank] = af.crash_at[*rank].min(*at_s);
                    }
                }
            }
        }
        af
    }

    /// Perturbed duration of a compute op posted by `rank` at program
    /// counter `pc` with its clock at `clock`. Pure in
    /// `(plan, seed, rank, pc, clock)`.
    #[inline]
    pub fn compute_seconds(&self, rank: usize, pc: usize, clock: f64, base: f64) -> f64 {
        let mut s = base * self.slowdown[rank];
        let amp = self.noise_amp[rank];
        if amp > 0.0 {
            let h = mix64(self.seed ^ SALT_NOISE ^ mix64(((rank as u64) << 32) | pc as u64));
            s *= 1.0 + amp * unit(h);
        }
        for &(t0, t1, f) in &self.throttle[rank] {
            if clock >= t0 && clock < t1 {
                s *= f;
            }
        }
        s
    }

    /// Extra wire latency of the message with sender-side request id
    /// `ireq` on link `from → to` (0 on healthy links). `ireq` is a
    /// program-order-deterministic arena index, so the retransmission
    /// draw is independent of scheduler visiting order.
    #[inline]
    pub fn wire_extra(&self, from: usize, to: usize, ireq: usize) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        let Some(&(p, lat)) = self.links.get(&(from, to)) else {
            return 0.0;
        };
        let mut extra = 0.0;
        for attempt in 0..MAX_RETRANSMITS {
            let h = mix64(self.seed ^ SALT_LINK ^ mix64(ireq as u64).wrapping_add(attempt as u64));
            if unit(h) < p {
                extra += lat;
            } else {
                break;
            }
        }
        extra
    }

    /// Simulated time at which `rank` dies (`INFINITY` = never).
    #[inline]
    pub fn crash_at(&self, rank: usize) -> f64 {
        self.crash_at[rank]
    }

    /// Whether the cooperative cancellation token was set.
    #[inline]
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none_and_canonical() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert_eq!(p.canonical(), "none");
        assert_eq!(FaultPlan::default(), p);
    }

    #[test]
    fn canonical_is_stable_and_distinguishes_plans() {
        let p1 = FaultPlan {
            seed: 7,
            events: vec![
                FaultEvent::Straggler {
                    rank: 3,
                    slowdown: 1.5,
                },
                FaultEvent::Crash {
                    rank: 1,
                    at_s: 0.25,
                },
            ],
        };
        let p2 = FaultPlan {
            seed: 8,
            ..p1.clone()
        };
        assert_eq!(p1.canonical(), p1.clone().canonical());
        assert_ne!(p1.canonical(), p2.canonical());
        assert!(p1.canonical().contains("straggler(rank=3,x=1.5)"));
        assert!(p1.canonical().contains("crash(rank=1,at=0.25)"));
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let bad = |e: FaultEvent| {
            FaultPlan {
                seed: 0,
                events: vec![e],
            }
            .validate()
            .unwrap_err()
        };
        assert!(bad(FaultEvent::OsNoise {
            ranks: RankSet::All,
            amplitude: -0.1,
        })
        .contains("amplitude"));
        assert!(bad(FaultEvent::Straggler {
            rank: 0,
            slowdown: 0.5,
        })
        .contains("slowdown"));
        assert!(bad(FaultEvent::FlakyLink {
            from: 0,
            to: 1,
            drop_prob: 1.0,
            retransmit_latency_s: 1e-6,
        })
        .contains("drop_prob"));
        assert!(bad(FaultEvent::Throttle {
            ranks: RankSet::All,
            t_start_s: 2.0,
            t_end_s: 1.0,
            slowdown: 1.2,
        })
        .contains("window"));
        assert!(bad(FaultEvent::Crash {
            rank: 0,
            at_s: f64::NAN,
        })
        .contains("crash time"));
    }

    #[test]
    fn compile_applies_events_per_rank() {
        let plan = FaultPlan {
            seed: 42,
            events: vec![
                FaultEvent::Straggler {
                    rank: 1,
                    slowdown: 2.0,
                },
                FaultEvent::OsNoise {
                    ranks: RankSet::List(vec![0, 2]),
                    amplitude: 0.5,
                },
                FaultEvent::Crash { rank: 2, at_s: 3.0 },
                FaultEvent::Crash { rank: 2, at_s: 1.0 }, // earliest wins
                FaultEvent::Straggler {
                    rank: 99,
                    slowdown: 9.0,
                }, // out of range: dropped
            ],
        };
        let af = ActiveFaults::compile(&plan, 3, None);
        // Rank 1: pure 2x straggler, no noise.
        assert_eq!(af.compute_seconds(1, 0, 0.0, 1.0), 2.0);
        // Rank 0: noisy — inflated but bounded by the amplitude.
        let s = af.compute_seconds(0, 5, 0.0, 1.0);
        assert!((1.0..1.5).contains(&s), "noise out of range: {s}");
        assert_eq!(af.crash_at(2), 1.0);
        assert_eq!(af.crash_at(0), f64::INFINITY);
        assert!(!af.cancelled());
    }

    #[test]
    fn fault_decisions_are_stateless_and_seeded() {
        let plan = |seed| FaultPlan {
            seed,
            events: vec![
                FaultEvent::OsNoise {
                    ranks: RankSet::All,
                    amplitude: 0.3,
                },
                FaultEvent::FlakyLink {
                    from: 0,
                    to: 1,
                    drop_prob: 0.9,
                    retransmit_latency_s: 1e-6,
                },
            ],
        };
        let a = ActiveFaults::compile(&plan(7), 2, None);
        let b = ActiveFaults::compile(&plan(7), 2, None);
        let c = ActiveFaults::compile(&plan(8), 2, None);
        // Same seed: identical draws in any evaluation order.
        assert_eq!(
            a.compute_seconds(0, 3, 0.0, 1.0),
            b.compute_seconds(0, 3, 0.0, 1.0)
        );
        assert_eq!(a.wire_extra(0, 1, 12), b.wire_extra(0, 1, 12));
        // Different seeds decorrelate (some draw must differ).
        let differs = (0..64).any(|i| {
            a.compute_seconds(0, i, 0.0, 1.0) != c.compute_seconds(0, i, 0.0, 1.0)
                || a.wire_extra(0, 1, i) != c.wire_extra(0, 1, i)
        });
        assert!(differs);
        // Healthy direction untouched.
        assert_eq!(a.wire_extra(1, 0, 12), 0.0);
        // Retransmissions are bounded even at high drop probability.
        let worst = (0..256)
            .map(|i| a.wire_extra(0, 1, i))
            .fold(0.0f64, f64::max);
        assert!(worst <= MAX_RETRANSMITS as f64 * 1e-6 + 1e-18);
        assert!(worst > 0.0, "p=0.9 link never retransmitted");
    }

    #[test]
    fn throttle_window_applies_inside_only() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::Throttle {
                ranks: RankSet::One(0),
                t_start_s: 1.0,
                t_end_s: 2.0,
                slowdown: 1.5,
            }],
        };
        let af = ActiveFaults::compile(&plan, 1, None);
        assert_eq!(af.compute_seconds(0, 0, 0.5, 1.0), 1.0);
        assert_eq!(af.compute_seconds(0, 0, 1.5, 1.0), 1.5);
        assert_eq!(af.compute_seconds(0, 0, 2.0, 1.0), 1.0);
    }

    #[test]
    fn cancellation_token_is_observed() {
        let flag = Arc::new(AtomicBool::new(false));
        let af = ActiveFaults::compile(&FaultPlan::none(), 1, Some(flag.clone()));
        assert!(!af.cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(af.cancelled());
    }
}
