//! Trace export: serialize [`Timeline`]s to CSV for external analysis
//! (the ITAC-trace-file analog), with a lossless round-trip parser.

use crate::trace::{EventKind, Timeline, TraceEvent};

/// CSV header of the trace format.
pub const CSV_HEADER: &str = "rank,start_s,end_s,kind";

fn kind_name(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Compute => "compute",
        EventKind::Send => "send",
        EventKind::Recv => "recv",
        EventKind::Sendrecv => "sendrecv",
        EventKind::Wait => "wait",
        EventKind::Allreduce => "allreduce",
        EventKind::Barrier => "barrier",
        EventKind::Bcast => "bcast",
        EventKind::Reduce => "reduce",
        EventKind::Allgather => "allgather",
        EventKind::Alltoall => "alltoall",
    }
}

fn kind_from_name(name: &str) -> Option<EventKind> {
    EventKind::ALL.into_iter().find(|&k| kind_name(k) == name)
}

/// Serialize a timeline to CSV (header + one line per event, events in
/// recording order).
pub fn to_csv(timeline: &Timeline) -> String {
    let mut out = String::with_capacity(timeline.events.len() * 32 + 64);
    out.push_str(&format!("# nranks={}\n", timeline.nranks));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for e in &timeline.events {
        out.push_str(&format!(
            "{},{:.9e},{:.9e},{}\n",
            e.rank,
            e.start,
            e.end,
            kind_name(e.kind)
        ));
    }
    out
}

/// Parse a CSV trace produced by [`to_csv`].
pub fn from_csv(text: &str) -> Result<Timeline, String> {
    let mut nranks = 0usize;
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line == CSV_HEADER {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# nranks=") {
            nranks = rest
                .parse()
                .map_err(|e| format!("line {}: bad nranks: {e}", lineno + 1))?;
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| {
            parts
                .next()
                .ok_or_else(|| format!("line {}: missing {name}", lineno + 1))
        };
        let rank: usize = field("rank")?
            .parse()
            .map_err(|e| format!("line {}: bad rank: {e}", lineno + 1))?;
        let start: f64 = field("start")?
            .parse()
            .map_err(|e| format!("line {}: bad start: {e}", lineno + 1))?;
        let end: f64 = field("end")?
            .parse()
            .map_err(|e| format!("line {}: bad end: {e}", lineno + 1))?;
        let kind_s = field("kind")?;
        let kind = kind_from_name(kind_s)
            .ok_or_else(|| format!("line {}: unknown kind '{kind_s}'", lineno + 1))?;
        if end < start {
            return Err(format!("line {}: event ends before it starts", lineno + 1));
        }
        events.push(TraceEvent {
            rank,
            start,
            end,
            kind,
        });
        nranks = nranks.max(rank + 1);
    }
    Ok(Timeline { nranks, events })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut t = Timeline::new(3);
        t.record(0, 0.0, 1.25e-3, EventKind::Compute);
        t.record(1, 1e-6, 2e-3, EventKind::Recv);
        t.record(2, 0.5e-3, 0.75e-3, EventKind::Allreduce);
        t.record(0, 1.25e-3, 1.5e-3, EventKind::Alltoall);
        t
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        let t = sample();
        let csv = to_csv(&t);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.nranks, t.nranks);
        assert_eq!(back.events.len(), t.events.len());
        for (a, b) in t.events.iter().zip(&back.events) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.kind, b.kind);
            assert!((a.start - b.start).abs() < 1e-15);
            assert!((a.end - b.end).abs() < 1e-15);
        }
    }

    #[test]
    fn every_kind_round_trips() {
        for kind in EventKind::ALL {
            assert_eq!(kind_from_name(kind_name(kind)), Some(kind));
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(from_csv("0,1.0,2.0,teleport").is_err());
        assert!(from_csv("0,2.0,1.0,compute").is_err());
        assert!(from_csv("x,1.0,2.0,compute").is_err());
        assert!(from_csv("0,1.0").is_err());
    }

    #[test]
    fn empty_and_header_only_inputs_parse() {
        assert!(from_csv("").unwrap().events.is_empty());
        let t = from_csv("# nranks=5\nrank,start_s,end_s,kind\n").unwrap();
        assert_eq!(t.nranks, 5);
        assert!(t.events.is_empty());
    }
}
