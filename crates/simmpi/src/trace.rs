//! Per-rank execution timelines — the ITAC analog.
//!
//! The engine emits one [`TraceEvent`] per executed operation. The
//! [`Timeline`] groups them per rank and computes the runtime breakdowns
//! the paper reports (e.g. minisweep at 59 processes on ClusterA: "75 %
//! of the time is spent in `MPI_Recv`, 5.5 % in `MPI_Sendrecv`, 19.5 % in
//! computation"). [`Timeline::render_ascii`] draws the Fig. 2-inset style
//! timelines.

use std::collections::BTreeMap;

/// The category of a timeline interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    Compute,
    Send,
    Recv,
    Sendrecv,
    Wait,
    Allreduce,
    Barrier,
    Bcast,
    Reduce,
    Allgather,
    Alltoall,
}

impl EventKind {
    /// Single-character glyph for ASCII rendering. Matches the paper's
    /// inset colouring: computation (blue → `#`), receives/waits
    /// (red → `r`/`w`), sends (yellow → `s`), collectives (`A`/`B`).
    pub fn glyph(self) -> char {
        match self {
            EventKind::Compute => '#',
            EventKind::Send => 's',
            EventKind::Recv => 'r',
            EventKind::Sendrecv => 'x',
            EventKind::Wait => 'w',
            EventKind::Allreduce => 'A',
            EventKind::Barrier => 'B',
            EventKind::Bcast => 'b',
            EventKind::Reduce => 'R',
            EventKind::Allgather => 'g',
            EventKind::Alltoall => 't',
        }
    }

    pub fn is_mpi(self) -> bool {
        self != EventKind::Compute
    }

    /// All kinds, in a fixed order (the engine's online breakdown
    /// arrays index into this).
    pub const ALL: [EventKind; 11] = [
        EventKind::Compute,
        EventKind::Send,
        EventKind::Recv,
        EventKind::Sendrecv,
        EventKind::Wait,
        EventKind::Allreduce,
        EventKind::Barrier,
        EventKind::Bcast,
        EventKind::Reduce,
        EventKind::Allgather,
        EventKind::Alltoall,
    ];

    /// Number of event kinds (array dimension for per-kind counters).
    pub const COUNT: usize = Self::ALL.len();

    /// Index of this kind in [`EventKind::ALL`]. The engine's hot path
    /// indexes its per-kind counters with this instead of scanning
    /// `ALL`; `ALL` is declared in discriminant order, which a unit
    /// test (`all_order_matches_discriminants`) pins.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EventKind::Compute => "Compute",
            EventKind::Send => "MPI_Send",
            EventKind::Recv => "MPI_Recv",
            EventKind::Sendrecv => "MPI_Sendrecv",
            EventKind::Wait => "MPI_Wait",
            EventKind::Allreduce => "MPI_Allreduce",
            EventKind::Barrier => "MPI_Barrier",
            EventKind::Bcast => "MPI_Bcast",
            EventKind::Reduce => "MPI_Reduce",
            EventKind::Allgather => "MPI_Allgather",
            EventKind::Alltoall => "MPI_Alltoall",
        };
        f.write_str(s)
    }
}

/// One interval on one rank's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    pub rank: usize,
    pub start: f64,
    pub end: f64,
    pub kind: EventKind,
}

impl TraceEvent {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Runtime fractions per event kind.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Breakdown {
    /// Seconds per kind.
    pub seconds: BTreeMap<EventKind, f64>,
    /// Total seconds covered.
    pub total: f64,
}

impl Breakdown {
    pub fn fraction(&self, kind: EventKind) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.seconds.get(&kind).copied().unwrap_or(0.0) / self.total
    }

    /// Fraction of the time spent in any MPI call.
    pub fn mpi_fraction(&self) -> f64 {
        EventKind::ALL
            .iter()
            .filter(|k| k.is_mpi())
            .map(|&k| self.fraction(k))
            .sum()
    }

    /// The MPI kind with the largest share, if any time is covered.
    pub fn dominant_mpi(&self) -> Option<EventKind> {
        EventKind::ALL
            .iter()
            .filter(|k| k.is_mpi())
            .copied()
            .max_by(|a, b| {
                self.fraction(*a)
                    .partial_cmp(&self.fraction(*b))
                    .expect("fractions are finite")
            })
            .filter(|&k| self.fraction(k) > 0.0)
    }
}

/// All events of a simulated run.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    pub nranks: usize,
    pub events: Vec<TraceEvent>,
}

impl Timeline {
    pub fn new(nranks: usize) -> Self {
        Timeline {
            nranks,
            events: Vec::new(),
        }
    }

    pub fn record(&mut self, rank: usize, start: f64, end: f64, kind: EventKind) {
        debug_assert!(end >= start, "event ends before it starts");
        // Zero-length intervals add nothing to any breakdown.
        if end > start {
            self.events.push(TraceEvent {
                rank,
                start,
                end,
                kind,
            });
        }
    }

    /// Append every event of a partition timeline, preserving its
    /// recording order. The per-rank event streams — the only ordering
    /// [`Timeline`] promises (see [`Timeline::rank_events`]; the global
    /// interleaving is scheduler-visiting-order and not part of the
    /// contract) — are owner-recorded by exactly one partition, so
    /// absorbing partitions in any order reproduces the sequential
    /// engine's per-rank streams exactly.
    pub fn absorb(&mut self, part: &Timeline) {
        debug_assert_eq!(self.nranks, part.nranks, "timelines of different runs");
        self.events.extend_from_slice(&part.events);
    }

    /// Events of one rank, in time order.
    pub fn rank_events(&self, rank: usize) -> Vec<TraceEvent> {
        let mut ev: Vec<TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.rank == rank)
            .copied()
            .collect();
        ev.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));
        ev
    }

    /// End of the last event (the makespan).
    pub fn end_time(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Aggregate breakdown over all ranks.
    pub fn breakdown(&self) -> Breakdown {
        let mut b = Breakdown::default();
        for e in &self.events {
            *b.seconds.entry(e.kind).or_insert(0.0) += e.duration();
            b.total += e.duration();
        }
        b
    }

    /// Breakdown for a single rank.
    pub fn rank_breakdown(&self, rank: usize) -> Breakdown {
        let mut b = Breakdown::default();
        for e in self.events.iter().filter(|e| e.rank == rank) {
            *b.seconds.entry(e.kind).or_insert(0.0) += e.duration();
            b.total += e.duration();
        }
        b
    }

    /// Render an ASCII timeline: one row per rank, `width` time bins; the
    /// glyph of the kind covering the majority of each bin is printed.
    /// Gaps (rank idle in the model, e.g. before a resume) print `.`.
    pub fn render_ascii(&self, width: usize) -> String {
        let t_end = self.end_time();
        if t_end <= 0.0 || width == 0 {
            return String::new();
        }
        let mut out = String::new();
        for rank in 0..self.nranks {
            let events = self.rank_events(rank);
            let mut row = vec!['.'; width];
            for (i, cell) in row.iter_mut().enumerate() {
                let bin_start = t_end * i as f64 / width as f64;
                let bin_end = t_end * (i + 1) as f64 / width as f64;
                // Find the kind with maximal overlap in this bin.
                let mut best = ('.', 0.0);
                for e in &events {
                    let overlap = (e.end.min(bin_end) - e.start.max(bin_start)).max(0.0);
                    if overlap > best.1 {
                        best = (e.kind.glyph(), overlap);
                    }
                }
                *cell = best.0;
            }
            out.push_str(&format!("{rank:>4} |"));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_order_matches_discriminants() {
        // `EventKind::index` relies on `ALL` listing the kinds in
        // declaration (discriminant) order.
        for (i, &k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i, "ALL out of discriminant order at {i}");
        }
    }

    fn sample() -> Timeline {
        let mut t = Timeline::new(2);
        t.record(0, 0.0, 1.0, EventKind::Compute);
        t.record(0, 1.0, 2.0, EventKind::Recv);
        t.record(1, 0.0, 3.0, EventKind::Compute);
        t.record(1, 3.0, 4.0, EventKind::Allreduce);
        t
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = sample().breakdown();
        let sum: f64 = EventKind::ALL.iter().map(|&k| b.fraction(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((b.total - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rank_breakdown_isolated() {
        let b = sample().rank_breakdown(0);
        assert!((b.fraction(EventKind::Compute) - 0.5).abs() < 1e-12);
        assert!((b.fraction(EventKind::Recv) - 0.5).abs() < 1e-12);
        assert_eq!(b.dominant_mpi(), Some(EventKind::Recv));
    }

    #[test]
    fn mpi_fraction_complements_compute() {
        let b = sample().breakdown();
        assert!((b.mpi_fraction() + b.fraction(EventKind::Compute) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_length_events_are_dropped() {
        let mut t = Timeline::new(1);
        t.record(0, 1.0, 1.0, EventKind::Barrier);
        assert!(t.events.is_empty());
    }

    #[test]
    fn end_time_is_max_end() {
        assert!((sample().end_time() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_has_one_row_per_rank() {
        let s = sample().render_ascii(40);
        assert_eq!(s.lines().count(), 2);
        // Rank 1 computes for 3/4 of the makespan: mostly '#'.
        let row1 = s.lines().nth(1).unwrap();
        let hashes = row1.chars().filter(|&c| c == '#').count();
        assert!(hashes >= 25, "expected mostly compute glyphs, got {row1}");
        // Collective at the end.
        assert!(row1.trim_end().ends_with('A'));
    }

    #[test]
    fn empty_timeline_renders_empty() {
        let t = Timeline::new(3);
        assert_eq!(t.render_ascii(10), "");
    }

    #[test]
    fn dominant_mpi_none_for_pure_compute() {
        let mut t = Timeline::new(1);
        t.record(0, 0.0, 1.0, EventKind::Compute);
        assert_eq!(t.breakdown().dominant_mpi(), None);
    }
}
