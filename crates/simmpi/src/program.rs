//! Abstract per-rank programs: the unit the discrete-event engine
//! executes.
//!
//! Kernels generate one [`Program`] per rank and simulation step. Compute
//! phases carry their duration (supplied by the node-level performance
//! model); communication operations carry only message metadata — exactly
//! the information a time-accurate MPI replay needs.

/// MPI message tag.
pub type Tag = u32;

/// Identifier of a non-blocking request, local to a rank.
pub type ReqId = u32;

/// One operation of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Local computation for `seconds` of wall-clock time.
    Compute { seconds: f64 },
    /// Blocking standard-mode send (eager below the protocol threshold,
    /// synchronous rendezvous at or above it — the regime the paper's
    /// minisweep analysis hinges on).
    Send { to: usize, tag: Tag, bytes: usize },
    /// Blocking receive.
    Recv { from: usize, tag: Tag },
    /// Combined send+receive (`MPI_Sendrecv`): deadlock-free pairwise
    /// exchange.
    Sendrecv {
        to: usize,
        send_bytes: usize,
        from: usize,
        tag: Tag,
    },
    /// Non-blocking send; completed by a matching [`Op::Wait`].
    Isend {
        to: usize,
        tag: Tag,
        bytes: usize,
        req: ReqId,
    },
    /// Non-blocking receive; completed by a matching [`Op::Wait`].
    Irecv { from: usize, tag: Tag, req: ReqId },
    /// Wait for one non-blocking request.
    Wait { req: ReqId },
    /// Global all-reduce of a buffer of `bytes` (the dominant collective
    /// of the suite: seven of nine benchmarks use it).
    Allreduce { bytes: usize },
    /// Global barrier (used by `lbm` at every iteration; the paper notes
    /// it is avoidable).
    Barrier,
    /// Broadcast of `bytes` from `root` (binomial tree).
    Bcast { root: usize, bytes: usize },
    /// Reduction of `bytes` to `root` (binomial tree).
    Reduce { root: usize, bytes: usize },
    /// All-gather: every rank contributes `bytes`, everyone ends with
    /// `p × bytes` (ring algorithm).
    Allgather { bytes: usize },
    /// All-to-all personalized exchange of `bytes` per peer (pairwise).
    Alltoall { bytes: usize },
}

impl Op {
    pub fn compute(seconds: f64) -> Self {
        Op::Compute { seconds }
    }
    pub fn send(to: usize, tag: Tag, bytes: usize) -> Self {
        Op::Send { to, tag, bytes }
    }
    pub fn recv(from: usize, tag: Tag) -> Self {
        Op::Recv { from, tag }
    }
    pub fn sendrecv(to: usize, send_bytes: usize, from: usize, tag: Tag) -> Self {
        Op::Sendrecv {
            to,
            send_bytes,
            from,
            tag,
        }
    }
    pub fn isend(to: usize, tag: Tag, bytes: usize, req: ReqId) -> Self {
        Op::Isend {
            to,
            tag,
            bytes,
            req,
        }
    }
    pub fn irecv(from: usize, tag: Tag, req: ReqId) -> Self {
        Op::Irecv { from, tag, req }
    }
    pub fn wait(req: ReqId) -> Self {
        Op::Wait { req }
    }
    pub fn allreduce(bytes: usize) -> Self {
        Op::Allreduce { bytes }
    }
    pub fn bcast(root: usize, bytes: usize) -> Self {
        Op::Bcast { root, bytes }
    }
    pub fn reduce(root: usize, bytes: usize) -> Self {
        Op::Reduce { root, bytes }
    }
    pub fn allgather(bytes: usize) -> Self {
        Op::Allgather { bytes }
    }
    pub fn alltoall(bytes: usize) -> Self {
        Op::Alltoall { bytes }
    }

    /// True for operations that involve the network.
    pub fn is_communication(&self) -> bool {
        !matches!(self, Op::Compute { .. })
    }
}

/// The ordered list of operations one rank executes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    pub ops: Vec<Op>,
}

impl Program {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total compute seconds contained in the program.
    pub fn compute_seconds(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| match o {
                Op::Compute { seconds } => *seconds,
                _ => 0.0,
            })
            .sum()
    }

    /// Total bytes sent by this rank (blocking + non-blocking +
    /// sendrecv; collectives not included).
    pub fn bytes_sent(&self) -> usize {
        self.ops
            .iter()
            .map(|o| match o {
                Op::Send { bytes, .. } | Op::Isend { bytes, .. } => *bytes,
                Op::Sendrecv { send_bytes, .. } => *send_bytes,
                _ => 0,
            })
            .sum()
    }

    /// Number of collective operations.
    pub fn collective_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Op::Allreduce { .. }
                        | Op::Barrier
                        | Op::Bcast { .. }
                        | Op::Reduce { .. }
                        | Op::Allgather { .. }
                        | Op::Alltoall { .. }
                )
            })
            .count()
    }

    /// Structural sanity check: every `Wait` refers to a request that is
    /// currently *open* (created by `Isend`/`Irecv` and not yet waited
    /// on), and no request is left open at the end. Request ids may be
    /// reused after their `Wait`, matching MPI's freed request handles —
    /// the runner relies on this when concatenating identical time
    /// steps.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::BTreeSet;
        let mut open: BTreeSet<ReqId> = BTreeSet::new();
        for op in &self.ops {
            match op {
                Op::Isend { req, .. } | Op::Irecv { req, .. } if !open.insert(*req) => {
                    return Err(format!("request {req} created while still open"));
                }
                Op::Wait { req } if !open.remove(req) => {
                    return Err(format!("wait on request {req} which is not open"));
                }
                _ => {}
            }
        }
        if let Some(req) = open.iter().next() {
            return Err(format!("request {req} never waited on"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulators() {
        let mut p = Program::new();
        p.push(Op::compute(0.5));
        p.push(Op::send(1, 0, 100));
        p.push(Op::isend(2, 0, 200, 0));
        p.push(Op::wait(0));
        p.push(Op::sendrecv(3, 300, 3, 0));
        p.push(Op::allreduce(8));
        p.push(Op::Barrier);
        p.push(Op::compute(0.25));
        assert!((p.compute_seconds() - 0.75).abs() < 1e-12);
        assert_eq!(p.bytes_sent(), 600);
        assert_eq!(p.collective_count(), 2);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_orphan_wait() {
        let mut p = Program::new();
        p.push(Op::wait(7));
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_double_create() {
        let mut p = Program::new();
        p.push(Op::irecv(0, 0, 1));
        p.push(Op::irecv(0, 0, 1));
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_allows_reuse_after_wait() {
        let mut p = Program::new();
        p.push(Op::irecv(0, 0, 1));
        p.push(Op::wait(1));
        p.push(Op::isend(0, 0, 8, 1));
        p.push(Op::wait(1));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unwaited_request() {
        let mut p = Program::new();
        p.push(Op::isend(1, 0, 8, 3));
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_accepts_interleaved_requests() {
        let mut p = Program::new();
        p.push(Op::irecv(1, 0, 0));
        p.push(Op::isend(1, 0, 64, 1));
        p.push(Op::compute(0.1));
        p.push(Op::wait(0));
        p.push(Op::wait(1));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn communication_predicate() {
        assert!(!Op::compute(1.0).is_communication());
        assert!(Op::Barrier.is_communication());
        assert!(Op::send(0, 0, 1).is_communication());
    }
}
