//! Per-run observability profile — the ITAC/LIKWID analog computed
//! *online* by the engine.
//!
//! The paper's evaluation rests on measurement tooling: ITAC traces for
//! the MPI time breakdowns of §4.1 / Fig. 2 and LIKWID counters for the
//! power analysis of §4.2. The [`Profile`] is the simulator's
//! equivalent: the engine accumulates it incrementally while executing,
//! so it is available even when full event tracing
//! ([`SimConfig::trace`](crate::engine::SimConfig)) is off — tracing
//! records *every interval*, the profile records *sums*, which is what
//! the Fig. 2-style analyses actually consume.
//!
//! Three views are maintained per run:
//!
//! * **per-rank phase split** ([`RankPhases`]) — wall-clock seconds in
//!   computation, eager-send overhead, rendezvous stalls, receive
//!   waits, collective waits and fault-induced stalls; the
//!   compute-vs-communication fractions of the paper's Fig. 2 insets,
//! * **protocol-regime / message-size histograms** — log2-bucketed
//!   point-to-point message counts and payload bytes, split into the
//!   eager and rendezvous regimes (the protocol boundary the minisweep
//!   pathology of §4.1.5 hinges on),
//! * **rank×rank communication matrix** — point-to-point payload bytes
//!   per (sender, receiver) pair, the ITAC message-statistics analog.

/// Protocol regime of a point-to-point message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Below the interconnect's threshold: completes locally after the
    /// sender overhead.
    Eager,
    /// At/above the threshold: synchronous hand-shake with the receiver.
    Rendezvous,
}

/// The category a blocked (or computing) interval is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Local computation.
    Compute,
    /// Sender-side overhead of eager messages (completes in `o`).
    EagerSend,
    /// Waiting for a rendezvous hand-shake + transfer to complete —
    /// the serialization regime of the minisweep ripple.
    RendezvousStall,
    /// Waiting for a message to arrive in `MPI_Recv`/`MPI_Wait`.
    RecvWait,
    /// Waiting inside a collective (barrier, allreduce, …).
    CollectiveWait,
    /// Time lost to injected faults (OS noise, straggler/throttle
    /// slowdown) — the inflation of a compute phase beyond its
    /// fault-free duration. Zero unless a
    /// [`FaultPlan`](crate::faults::FaultPlan) is active.
    FaultStall,
}

/// Per-rank wall-clock split over the [`Phase`] categories, seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankPhases {
    pub compute_s: f64,
    pub eager_send_s: f64,
    pub rendezvous_stall_s: f64,
    pub recv_wait_s: f64,
    pub collective_wait_s: f64,
    /// Fault-induced compute inflation (zero without fault injection).
    pub fault_stall_s: f64,
}

impl RankPhases {
    /// Total accounted time.
    pub fn total_s(&self) -> f64 {
        self.compute_s
            + self.eager_send_s
            + self.rendezvous_stall_s
            + self.recv_wait_s
            + self.collective_wait_s
            + self.fault_stall_s
    }

    /// Time in any MPI phase (fault stalls are local, not MPI).
    pub fn mpi_s(&self) -> f64 {
        self.total_s() - self.compute_s - self.fault_stall_s
    }

    /// Fraction of the accounted time spent communicating (0 when no
    /// time is accounted).
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total_s();
        if t <= 0.0 {
            0.0
        } else {
            self.mpi_s() / t
        }
    }

    fn add(&mut self, phase: Phase, secs: f64) {
        match phase {
            Phase::Compute => self.compute_s += secs,
            Phase::EagerSend => self.eager_send_s += secs,
            Phase::RendezvousStall => self.rendezvous_stall_s += secs,
            Phase::RecvWait => self.recv_wait_s += secs,
            Phase::CollectiveWait => self.collective_wait_s += secs,
            Phase::FaultStall => self.fault_stall_s += secs,
        }
    }

    /// Component-wise `self − other`, clamped at zero (used to isolate
    /// the measured region from the warm-up prefix).
    fn saturating_sub(&self, other: &RankPhases) -> RankPhases {
        let d = |a: f64, b: f64| (a - b).max(0.0);
        RankPhases {
            compute_s: d(self.compute_s, other.compute_s),
            eager_send_s: d(self.eager_send_s, other.eager_send_s),
            rendezvous_stall_s: d(self.rendezvous_stall_s, other.rendezvous_stall_s),
            recv_wait_s: d(self.recv_wait_s, other.recv_wait_s),
            collective_wait_s: d(self.collective_wait_s, other.collective_wait_s),
            fault_stall_s: d(self.fault_stall_s, other.fault_stall_s),
        }
    }
}

/// One log2 message-size bucket: message count and payload bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeBucket {
    pub count: u64,
    pub bytes: u64,
}

/// Number of log2 size buckets (bucket `i` covers `[2^i, 2^(i+1))`
/// bytes; zero-byte messages land in bucket 0 alongside 1-byte ones).
pub const NBUCKETS: usize = 40;

/// Log2 bucket index of a message size (clamped into the last bucket).
pub fn bucket_of(bytes: usize) -> usize {
    if bytes <= 1 {
        0
    } else {
        ((usize::BITS - 1 - bytes.leading_zeros()) as usize).min(NBUCKETS - 1)
    }
}

/// Lower bound (bytes) of a bucket, for rendering.
pub fn bucket_floor(bucket: usize) -> u64 {
    1u64 << bucket
}

/// The complete observability profile of one simulated run. Empty
/// (`nranks == 0`) when profiling was disabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    pub nranks: usize,
    /// Phase split of every rank.
    pub per_rank: Vec<RankPhases>,
    /// Message-size histogram of the eager regime.
    pub eager_hist: Vec<SizeBucket>,
    /// Message-size histogram of the rendezvous regime.
    pub rendezvous_hist: Vec<SizeBucket>,
    /// Row-major rank×rank payload bytes: `comm_matrix[from * nranks + to]`.
    pub comm_matrix: Vec<u64>,
}

impl Profile {
    /// An enabled, zeroed profile for `nranks` ranks.
    pub fn new(nranks: usize) -> Self {
        Profile {
            nranks,
            per_rank: vec![RankPhases::default(); nranks],
            eager_hist: vec![SizeBucket::default(); NBUCKETS],
            rendezvous_hist: vec![SizeBucket::default(); NBUCKETS],
            comm_matrix: vec![0; nranks * nranks],
        }
    }

    /// Whether the engine populated this profile.
    pub fn is_enabled(&self) -> bool {
        self.nranks > 0
    }

    /// Record one point-to-point message (at post time).
    pub fn record_message(&mut self, from: usize, to: usize, bytes: usize, regime: Regime) {
        let hist = match regime {
            Regime::Eager => &mut self.eager_hist,
            Regime::Rendezvous => &mut self.rendezvous_hist,
        };
        let b = &mut hist[bucket_of(bytes)];
        b.count += 1;
        b.bytes += bytes as u64;
        self.comm_matrix[from * self.nranks + to] += bytes as u64;
    }

    /// Accumulate one interval into a rank's phase split.
    pub fn record_phase(&mut self, rank: usize, phase: Phase, secs: f64) {
        if secs > 0.0 {
            self.per_rank[rank].add(phase, secs);
        }
    }

    /// Payload bytes sent `from → to`.
    pub fn bytes_between(&self, from: usize, to: usize) -> u64 {
        self.comm_matrix[from * self.nranks + to]
    }

    /// Totals over one regime's histogram.
    pub fn regime_totals(&self, regime: Regime) -> SizeBucket {
        let hist = match regime {
            Regime::Eager => &self.eager_hist,
            Regime::Rendezvous => &self.rendezvous_hist,
        };
        hist.iter()
            .fold(SizeBucket::default(), |acc, b| SizeBucket {
                count: acc.count + b.count,
                bytes: acc.bytes + b.bytes,
            })
    }

    /// Sum of every rank's phase split.
    pub fn totals(&self) -> RankPhases {
        let mut t = RankPhases::default();
        for r in &self.per_rank {
            t.compute_s += r.compute_s;
            t.eager_send_s += r.eager_send_s;
            t.rendezvous_stall_s += r.rendezvous_stall_s;
            t.recv_wait_s += r.recv_wait_s;
            t.collective_wait_s += r.collective_wait_s;
            t.fault_stall_s += r.fault_stall_s;
        }
        t
    }

    /// `self − warm`, component-wise and clamped at zero. Both runs
    /// being deterministic with a shared prefix, this isolates the
    /// measured region exactly (the same trick
    /// `harness`'s breakdown subtraction uses).
    pub fn saturating_sub(&self, warm: &Profile) -> Profile {
        if !self.is_enabled() {
            return Profile::default();
        }
        if !warm.is_enabled() {
            return self.clone();
        }
        assert_eq!(self.nranks, warm.nranks, "profiles of different runs");
        let sub_hist = |a: &[SizeBucket], b: &[SizeBucket]| -> Vec<SizeBucket> {
            a.iter()
                .zip(b)
                .map(|(x, y)| SizeBucket {
                    count: x.count.saturating_sub(y.count),
                    bytes: x.bytes.saturating_sub(y.bytes),
                })
                .collect()
        };
        Profile {
            nranks: self.nranks,
            per_rank: self
                .per_rank
                .iter()
                .zip(&warm.per_rank)
                .map(|(a, b)| a.saturating_sub(b))
                .collect(),
            eager_hist: sub_hist(&self.eager_hist, &warm.eager_hist),
            rendezvous_hist: sub_hist(&self.rendezvous_hist, &warm.rendezvous_hist),
            comm_matrix: self
                .comm_matrix
                .iter()
                .zip(&warm.comm_matrix)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }

    /// Merge one partition's profile into a full-size one: the
    /// per-rank phase rows of `lo..hi` are scattered from the partition
    /// (which owns those ranks exclusively), while the global views —
    /// both size histograms and the communication matrix — are summed
    /// element-wise. All global counters are `u64`, so the merged
    /// result is bit-identical to a single-threaded accumulation
    /// regardless of partition order; the per-rank `f64` sums are
    /// owner-written in the rank's own operation order, which is the
    /// same order the sequential engine uses.
    pub fn absorb_partition(&mut self, part: &Profile, lo: usize, hi: usize) {
        assert_eq!(self.nranks, part.nranks, "profiles of different runs");
        self.per_rank[lo..hi].copy_from_slice(&part.per_rank[lo..hi]);
        for (a, b) in self.eager_hist.iter_mut().zip(&part.eager_hist) {
            a.count += b.count;
            a.bytes += b.bytes;
        }
        for (a, b) in self.rendezvous_hist.iter_mut().zip(&part.rendezvous_hist) {
            a.count += b.count;
            a.bytes += b.bytes;
        }
        for (a, b) in self.comm_matrix.iter_mut().zip(&part.comm_matrix) {
            *a += *b;
        }
    }

    // -----------------------------------------------------------------
    // CSV export (the `results/profile/` artifacts)
    // -----------------------------------------------------------------

    /// Per-rank phase split as CSV.
    pub fn ranks_to_csv(&self) -> String {
        let mut out = String::from(
            "rank,compute_s,eager_send_s,rendezvous_stall_s,recv_wait_s,collective_wait_s,fault_stall_s,comm_fraction\n",
        );
        for (rank, p) in self.per_rank.iter().enumerate() {
            out.push_str(&format!(
                "{},{:.9e},{:.9e},{:.9e},{:.9e},{:.9e},{:.9e},{:.6}\n",
                rank,
                p.compute_s,
                p.eager_send_s,
                p.rendezvous_stall_s,
                p.recv_wait_s,
                p.collective_wait_s,
                p.fault_stall_s,
                p.comm_fraction()
            ));
        }
        out
    }

    /// Message-size histogram (both regimes) as CSV; only non-empty
    /// buckets are written.
    pub fn histogram_to_csv(&self) -> String {
        let mut out = String::from("regime,bucket_floor_bytes,count,bytes\n");
        for (name, hist) in [
            ("eager", &self.eager_hist),
            ("rendezvous", &self.rendezvous_hist),
        ] {
            for (i, b) in hist.iter().enumerate() {
                if b.count > 0 {
                    out.push_str(&format!(
                        "{},{},{},{}\n",
                        name,
                        bucket_floor(i),
                        b.count,
                        b.bytes
                    ));
                }
            }
        }
        out
    }

    /// Rank×rank communication matrix as sparse CSV (non-zero entries).
    pub fn matrix_to_csv(&self) -> String {
        let mut out = String::from("from,to,bytes\n");
        for from in 0..self.nranks {
            for to in 0..self.nranks {
                let b = self.bytes_between(from, to);
                if b > 0 {
                    out.push_str(&format!("{from},{to},{b}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_sizes() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1 << 20), 20);
        assert_eq!(bucket_of((1 << 20) + 1), 20);
        assert_eq!(bucket_floor(20), 1 << 20);
        assert!(bucket_of(usize::MAX) < NBUCKETS);
    }

    #[test]
    fn message_recording_fills_all_views() {
        let mut p = Profile::new(4);
        p.record_message(0, 1, 100, Regime::Eager);
        p.record_message(0, 1, 100, Regime::Eager);
        p.record_message(2, 3, 1 << 20, Regime::Rendezvous);
        assert_eq!(p.bytes_between(0, 1), 200);
        assert_eq!(p.bytes_between(1, 0), 0);
        assert_eq!(p.regime_totals(Regime::Eager).count, 2);
        assert_eq!(p.regime_totals(Regime::Eager).bytes, 200);
        assert_eq!(p.regime_totals(Regime::Rendezvous).count, 1);
        assert_eq!(p.eager_hist[bucket_of(100)].count, 2);
        assert_eq!(p.rendezvous_hist[20].bytes, 1 << 20);
    }

    #[test]
    fn phase_accounting_and_fractions() {
        let mut p = Profile::new(2);
        p.record_phase(0, Phase::Compute, 3.0);
        p.record_phase(0, Phase::RecvWait, 1.0);
        p.record_phase(1, Phase::CollectiveWait, 2.0);
        p.record_phase(1, Phase::Compute, 0.0); // no-op
        assert!((p.per_rank[0].total_s() - 4.0).abs() < 1e-12);
        assert!((p.per_rank[0].comm_fraction() - 0.25).abs() < 1e-12);
        assert!((p.per_rank[1].comm_fraction() - 1.0).abs() < 1e-12);
        let t = p.totals();
        assert!((t.total_s() - 6.0).abs() < 1e-12);
        assert!((t.mpi_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn subtraction_isolates_measured_region() {
        let mut full = Profile::new(1);
        full.record_phase(0, Phase::Compute, 5.0);
        full.record_message(0, 0, 64, Regime::Eager);
        full.record_message(0, 0, 64, Regime::Eager);
        let mut warm = Profile::new(1);
        warm.record_phase(0, Phase::Compute, 2.0);
        warm.record_message(0, 0, 64, Regime::Eager);
        let m = full.saturating_sub(&warm);
        assert!((m.per_rank[0].compute_s - 3.0).abs() < 1e-12);
        assert_eq!(m.regime_totals(Regime::Eager).count, 1);
        assert_eq!(m.bytes_between(0, 0), 64);
    }

    #[test]
    fn disabled_profile_subtracts_to_empty() {
        let empty = Profile::default();
        assert!(!empty.is_enabled());
        assert_eq!(empty.saturating_sub(&Profile::new(3)), Profile::default());
        let p = Profile::new(2);
        assert_eq!(p.saturating_sub(&Profile::default()), p);
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let mut p = Profile::new(2);
        p.record_phase(0, Phase::Compute, 1.0);
        p.record_phase(1, Phase::RendezvousStall, 0.5);
        p.record_message(0, 1, 1 << 17, Regime::Rendezvous);
        let ranks = p.ranks_to_csv();
        assert_eq!(ranks.lines().count(), 3); // header + 2 ranks
        assert!(ranks.starts_with("rank,compute_s"));
        let hist = p.histogram_to_csv();
        assert!(hist.contains("rendezvous,131072,1,131072"));
        let m = p.matrix_to_csv();
        assert_eq!(m.lines().count(), 2); // header + 1 pair
        assert!(m.contains("0,1,131072"));
    }
}
