//! Conservative parallel discrete-event scheduler (PDES) — the
//! implementation behind [`SimConfig::threads`](crate::engine::SimConfig)
//! `> 1`.
//!
//! ## Design
//!
//! The rank range is split into `threads` contiguous partitions, with
//! cut points snapped to node boundaries where one lies near the even
//! split (see `partition_ranks`). Each partition is driven by its own
//! copy of the sequential ready-queue scheduler on a host thread, with
//! its own channel table, trace timeline and profile sink. Partitions
//! exchange three kinds of messages over per-partition inboxes:
//!
//! * `Send` — a point-to-point posting whose receiver lives in another
//!   partition; the channel (and thus the FIFO matching state) is owned
//!   by the *receiver's* partition,
//! * `RdvDone` — the sender-side completion of a rendezvous hand-shake
//!   resolved by a remote receiver,
//! * `CollFinish` — the finish time of a collective, broadcast by the
//!   partition that observed the last entrant.
//!
//! ## Null messages, lookahead, and why the result is bit-identical
//!
//! The engine's completion times are *visiting-order independent*:
//! every timestamp is computed from posted timestamps alone (FIFO
//! matching involves exactly two ranks whose postings are in program
//! order; collective finishes are max-reductions — see the scheduling
//! notes in [`crate::engine`]). Parallel execution is therefore a
//! monotone dataflow fixed point: a partition can never observe a
//! message "too early", only make progress the moment its inputs exist,
//! and the fixed point it converges to is the sequential result bit for
//! bit. Classic conservative PDES needs LBTS/null-message rounds to
//! decide when it is *safe* to advance local virtual time; here safety
//! is unconditional, so the null-message machinery degenerates into two
//! honest throughput knobs:
//!
//! * **Lookahead-horizon flushing** — outgoing cross-partition traffic
//!   is batched and released whenever the executing rank's clock passes
//!   the last flush by [`NetModel::lookahead`] (the LogGP `L` of the
//!   interconnect — the minimum time any cross-node message needs
//!   anyway), bounding both the batching delay in virtual time and the
//!   lock traffic per real second. A partition always flushes before
//!   idling and immediately after finishing a collective (a global
//!   synchronization point every other partition is waiting on).
//! * **Quiescence accounting** — global sent/delivered counters double
//!   as the LBTS termination test: when every partition is idle and
//!   every sent message was delivered, no progress is possible anywhere
//!   and the run has reached its fixed point (completion *or* the same
//!   deadlock state the sequential engine would report).
//!
//! ## Deterministic merge
//!
//! Each per-rank output (finish time, program counter, breakdown row,
//! per-rank profile phases, trace events) is written only by the
//! partition owning that rank, in the rank's own program order — so
//! scattering the partition outputs back together reproduces the
//! sequential per-rank streams exactly. Cross-rank aggregates are
//! merged with exact, commutative reductions only: `u64` byte counters
//! and histogram buckets add, collective entry times max-reduce, and
//! the global request-arena numbering (which seeds the flaky-link
//! draws) is identical because every partition indexes the same
//! prepass-derived arena layout.
//!
//! ## Errors under `threads > 1`
//!
//! Failures are resolved canonically so the report does not depend on
//! thread count or host timing:
//!
//! * `Cancelled` wins over everything (mirrors the sequential poll
//!   order),
//! * a crash freezes only the crashed rank; the run drains to
//!   quiescence and blames the candidate with the smallest
//!   `(at_s, rank)`. Single-crash plans — the common case — report
//!   exactly what the sequential engine reports,
//! * a collective mismatch blames the smallest rank whose call differs
//!   from the smallest entrant's call,
//! * deadlock reports the same blocked set as the sequential engine:
//!   the drained state *is* the sequential fixed point.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::engine::{
    regime_of, Blocked, ChanMemo, Channels, Engine, FaultHook, IReq, LiveProfile, NetParams,
    NoFaults, NoProfile, Prepass, ProfileSink, RankState, ReadyQueue, RecvPost, Req, ReqClass,
    ReqSet, SendPost, SimError, SimResult,
};
use crate::faults::ActiveFaults;
use crate::netmodel::NetModel;
use crate::profile::Profile;
use crate::program::{Op, Program};
use crate::trace::{EventKind, Timeline};

/// Flush the outgoing buffers once this many messages are pending even
/// if the executing rank's clock has not crossed the lookahead horizon
/// yet — bounds the burst a receiver sees in one batch.
const FLUSH_CAP: usize = 512;

/// Lock a mutex, recovering from poisoning (a panicked peer worker is
/// surfaced through its join handle; the state itself stays usable).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

/// Split `0..nranks` into `parts` contiguous, non-empty ranges.
///
/// Cut points start from the even split and snap to the nearest node
/// boundary (a rank whose node differs from its predecessor's) when one
/// lies within half a partition width — node-aligned cuts keep
/// intra-node traffic (cheap, high-rate) inside a partition and route
/// only inter-node traffic (whose latency is the lookahead) across
/// partitions. Jobs on a single node simply get the even split.
pub(crate) fn partition_ranks(nranks: usize, parts: usize, node_of: &[u32]) -> Vec<Range<usize>> {
    let p = parts.clamp(1, nranks.max(1));
    let starts: Vec<usize> = (1..nranks)
        .filter(|&b| node_of[b] != node_of[b - 1])
        .collect();
    let mut cuts = Vec::with_capacity(p + 1);
    cuts.push(0usize);
    for i in 1..p {
        let ideal = i * nranks / p;
        let snapped = nearest_boundary(&starts, ideal);
        let half = (nranks / p / 2).max(1);
        let cut = match snapped {
            Some(s) if s.abs_diff(ideal) <= half => s,
            _ => ideal,
        };
        let prev = *cuts.last().expect("cuts is non-empty");
        // Keep every partition non-empty and leave room for the rest.
        cuts.push(cut.clamp(prev + 1, nranks - (p - i)));
    }
    cuts.push(nranks);
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Nearest element of the sorted `starts` to `ideal` (ties toward the
/// smaller), or `None` if there are no boundaries.
fn nearest_boundary(starts: &[usize], ideal: usize) -> Option<usize> {
    let i = starts.partition_point(|&s| s < ideal);
    let right = starts.get(i).copied();
    let left = i.checked_sub(1).map(|j| starts[j]);
    match (left, right) {
        (Some(l), Some(r)) => Some(if ideal - l <= r - ideal { l } else { r }),
        (Some(l), None) => Some(l),
        (None, r) => r,
    }
}

// ---------------------------------------------------------------------------
// Inter-partition protocol
// ---------------------------------------------------------------------------

/// One cross-partition message.
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// A point-to-point posting whose receiver is remote; carries the
    /// sender's global arena request id so rendezvous completions and
    /// flaky-link draws key exactly as in the sequential engine.
    Send {
        from: usize,
        to: usize,
        tag: u32,
        time: f64,
        bytes: usize,
        ireq: IReq,
    },
    /// Sender-side completion of a rendezvous resolved remotely.
    RdvDone {
        rank: usize,
        ireq: IReq,
        done_at: f64,
    },
    /// A collective completed; every partition unparks its entrants.
    CollFinish { seq: usize, finish: f64 },
}

/// A partition's message inbox.
#[derive(Default)]
struct Inbox {
    queue: Mutex<VecDeque<Msg>>,
    cv: Condvar,
}

/// Outgoing message buffers, one per destination partition, released in
/// lookahead-sized windows (see the module docs).
struct Outgoing {
    bufs: Vec<Vec<Msg>>,
    pending: usize,
}

impl Outgoing {
    fn new(nparts: usize) -> Self {
        Outgoing {
            bufs: vec![Vec::new(); nparts],
            pending: 0,
        }
    }

    #[inline]
    fn push(&mut self, dest: usize, m: Msg) {
        self.bufs[dest].push(m);
        self.pending += 1;
    }
}

/// Global state of one collective sequence number. Unlike the
/// sequential engine's entry (first entrant fixes the expected kind),
/// the expected kind is canonicalized to the *smallest* entrant's so
/// the mismatch report is independent of arrival order.
struct CollGlobal {
    kind: EventKind,
    /// Smallest rank entered so far; defines `kind`.
    owner: usize,
    bytes: usize,
    entered: usize,
    max_entry: f64,
    finish: Option<f64>,
    /// Smallest rank whose call differed from the owner's, if any.
    mismatch: Option<(usize, EventKind)>,
}

/// A rank that hit its injected crash time: `(at_s, rank)`-minimum wins
/// the blame after the drain.
struct CrashCand {
    at_s: f64,
    rank: usize,
    pc: usize,
}

/// State shared by all partition workers for one run.
struct Shared<'a> {
    np: NetParams,
    net: &'a NetModel,
    programs: &'a [Program],
    parts: Vec<Range<usize>>,
    /// Partition index per rank.
    part_of: Vec<u32>,
    /// Global request-arena layout: rank `r` owns
    /// `arena_start[r]..arena_start[r + 1]`.
    arena_start: Vec<usize>,
    arena_total: usize,
    lookahead: f64,
    inboxes: Vec<Inbox>,
    /// Messages pushed to any inbox / drained from any inbox. Equality
    /// while everyone idles is the quiescence (termination) test.
    sent: AtomicU64,
    delivered: AtomicU64,
    idle: AtomicUsize,
    stop: AtomicBool,
    cancelled: AtomicBool,
    colls: Mutex<Vec<CollGlobal>>,
    crashes: Mutex<Vec<CrashCand>>,
}

/// Set the stop flag and wake every parked worker. Locking each inbox
/// before notifying pairs with the waiters' check-under-lock, so no
/// wakeup is lost.
fn stop_all(sh: &Shared<'_>) {
    sh.stop.store(true, Ordering::SeqCst);
    for ib in &sh.inboxes {
        let _guard = lock(&ib.queue);
        ib.cv.notify_all();
    }
}

/// Release every pending outgoing message to its destination inbox.
/// `sent` is incremented under the destination lock, before the push
/// becomes visible, so `sent >= delivered` always holds and equality
/// implies empty inboxes.
fn flush(sh: &Shared<'_>, out: &mut Outgoing) {
    if out.pending == 0 {
        return;
    }
    for (dest, buf) in out.bufs.iter_mut().enumerate() {
        if buf.is_empty() {
            continue;
        }
        let inbox = &sh.inboxes[dest];
        {
            let mut q = lock(&inbox.queue);
            sh.sent.fetch_add(buf.len() as u64, Ordering::SeqCst);
            q.extend(buf.drain(..));
        }
        inbox.cv.notify_all();
    }
    out.pending = 0;
}

// ---------------------------------------------------------------------------
// Remote-origin matching
// ---------------------------------------------------------------------------

/// Match pending pairs in a channel whose sender `from` lives in
/// another partition (the receiver `to` is local — channels are owned
/// by the receiving partition). The receive side completes locally with
/// the exact expressions of [`Engine::match_channel`]; the rendezvous
/// sender-side completion travels back as a [`Msg::RdvDone`].
#[allow(clippy::too_many_arguments)]
fn match_remote_origin<F: FaultHook>(
    eager_threshold: usize,
    ch: &mut crate::engine::Channel,
    from: usize,
    to: usize,
    reqs: &mut [Req],
    ready: &mut ReadyQueue,
    out: &mut Outgoing,
    part_of: &[u32],
    faults: &F,
) {
    while !ch.sends.is_empty() && !ch.recvs.is_empty() {
        let s = ch.sends.pop();
        let v = ch.recvs.pop();
        let mut wire = ch.wire_lat + s.bytes as f64 / ch.wire_denom;
        if F::ENABLED {
            wire += faults.wire_extra(from, to, s.ireq);
        }
        if s.bytes < eager_threshold {
            // Eager: the sender completed locally at post time; only
            // the receive completes here, at message arrival.
            let arrival = s.time + wire;
            let recv_done = v.time.max(arrival);
            let rq = &mut reqs[v.ireq];
            rq.done_at = recv_done;
            rq.done = true;
            ready.wake(to, usize::MAX);
        } else {
            let start = s.time.max(v.time);
            let done = start + wire;
            let rq = &mut reqs[v.ireq];
            rq.done_at = done;
            rq.done = true;
            ready.wake(to, usize::MAX);
            out.push(
                part_of[from] as usize,
                Msg::RdvDone {
                    rank: from,
                    ireq: s.ireq,
                    done_at: done,
                },
            );
        }
    }
}

/// Post a send whose receiver is remote: allocate the sender's arena
/// request exactly as [`Engine::post_send`] does (eager completes
/// locally after the sender overhead), and forward the posting to the
/// receiver's partition, which owns the channel. Returns the request
/// and whether the pair shares a node.
#[allow(clippy::too_many_arguments)]
fn post_send_remote(
    sh: &Shared<'_>,
    ranks: &mut [RankState],
    reqs: &mut [Req],
    out: &mut Outgoing,
    from: usize,
    to: usize,
    tag: u32,
    bytes: usize,
    time: f64,
    eager: bool,
) -> (IReq, bool) {
    let rank = &mut ranks[from];
    let ireq = rank.req_next;
    debug_assert!(ireq < rank.req_end, "prepass under-counted posts");
    rank.req_next += 1;
    reqs[ireq] = Req {
        done_at: if eager {
            time + sh.np.send_overhead
        } else {
            0.0
        },
        class: if eager {
            ReqClass::EagerSend
        } else {
            ReqClass::RdvSend
        },
        done: eager,
    };
    out.push(
        sh.part_of[to] as usize,
        Msg::Send {
            from,
            to,
            tag,
            time,
            bytes,
            ireq,
        },
    );
    (ireq, sh.np.node_of[from] == sh.np.node_of[to])
}

/// Post a receive whose sender is remote: the channel is local (the
/// receiver owns it) and may already hold forwarded sends.
#[allow(clippy::too_many_arguments)]
fn post_recv_remote<F: FaultHook>(
    sh: &Shared<'_>,
    ranks: &mut [RankState],
    reqs: &mut [Req],
    channels: &mut Channels,
    ready: &mut ReadyQueue,
    out: &mut Outgoing,
    from: usize,
    to: usize,
    tag: u32,
    time: f64,
    faults: &F,
) -> IReq {
    let rank = &mut ranks[to];
    let ireq = rank.req_next;
    debug_assert!(ireq < rank.req_end, "prepass under-counted posts");
    rank.req_next += 1;
    // The arena slot is pre-initialized to a pending `Recv`.
    let memo = rank.recv_memo;
    let slot = if memo.peer == from && memo.tag == tag {
        memo.idx
    } else {
        let idx = channels.slot(&sh.np, from, to, tag);
        rank.recv_memo = ChanMemo {
            peer: from,
            tag,
            idx,
        };
        idx
    };
    let ch = &mut channels.store[slot as usize];
    ch.recvs.push(RecvPost { time, ireq });
    match_remote_origin(
        sh.np.eager_threshold,
        ch,
        from,
        to,
        reqs,
        ready,
        out,
        &sh.part_of,
        faults,
    );
    ireq
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

/// Outcome of entering a collective.
enum Enter {
    /// This rank was the last entrant; the collective finished.
    Finished(f64),
    /// Park until a `CollFinish` (or a local last entrant) releases it.
    Pending,
    /// This rank's call disagrees with the canonical one — freeze it.
    Mismatch,
}

/// Record `(rank, kind)` as a mismatch if it is the smallest-ranked one
/// seen.
fn min_mismatch(slot: &mut Option<(usize, EventKind)>, rank: usize, kind: EventKind) {
    if slot.is_none_or(|(r, _)| rank < r) {
        *slot = Some((rank, kind));
    }
}

/// Enter `rank` into the global collective at `seq`. The expected kind
/// is canonicalized to the smallest entrant's; entry times max-reduce
/// (exact and commutative, so the finish is bit-identical to the
/// sequential engine's regardless of arrival order). The last entrant
/// computes the finish, records it in the local mirror and queues the
/// broadcast — the caller must flush immediately.
#[allow(clippy::too_many_arguments)]
fn enter_global(
    sh: &Shared<'_>,
    me: usize,
    rank: usize,
    seq: usize,
    kind: EventKind,
    bytes: usize,
    time: f64,
    out: &mut Outgoing,
    coll_finish: &mut Vec<Option<f64>>,
) -> Enter {
    let nranks = sh.programs.len();
    let mut colls = lock(&sh.colls);
    if colls.len() <= seq {
        // A rank reaches `seq` only after every rank passed `seq - 1`,
        // so the table grows one sequence at a time.
        debug_assert_eq!(colls.len(), seq, "collective sequence entered out of order");
        colls.push(CollGlobal {
            kind,
            owner: rank,
            bytes: 0,
            entered: 0,
            max_entry: 0.0,
            finish: None,
            mismatch: None,
        });
    } else {
        let e = &mut colls[seq];
        if rank < e.owner {
            if kind != e.kind {
                // The old owner was the smallest entrant so far, hence
                // the smallest now disagreeing with the new canon.
                min_mismatch(&mut e.mismatch, e.owner, e.kind);
                e.kind = kind;
            }
            e.owner = rank;
        } else if kind != e.kind {
            min_mismatch(&mut e.mismatch, rank, kind);
            return Enter::Mismatch;
        }
    }
    let e = &mut colls[seq];
    e.bytes = e.bytes.max(bytes);
    e.entered += 1;
    e.max_entry = e.max_entry.max(time);
    if e.entered == nranks && e.mismatch.is_none() {
        let cost = match e.kind {
            EventKind::Barrier => sh.net.barrier_cost(nranks),
            EventKind::Allreduce => sh.net.allreduce_cost(nranks, e.bytes),
            EventKind::Bcast => sh.net.bcast_cost(nranks, e.bytes),
            EventKind::Reduce => sh.net.reduce_cost(nranks, e.bytes),
            EventKind::Allgather => sh.net.allgather_cost(nranks, e.bytes),
            EventKind::Alltoall => sh.net.alltoall_cost(nranks, e.bytes),
            _ => 0.0,
        };
        let finish = e.max_entry + cost;
        e.finish = Some(finish);
        drop(colls);
        set_finish(coll_finish, seq, finish);
        for p in 0..sh.parts.len() {
            if p != me {
                out.push(p, Msg::CollFinish { seq, finish });
            }
        }
        return Enter::Finished(finish);
    }
    Enter::Pending
}

fn set_finish(coll_finish: &mut Vec<Option<f64>>, seq: usize, finish: f64) {
    if coll_finish.len() <= seq {
        coll_finish.resize(seq + 1, None);
    }
    coll_finish[seq] = Some(finish);
}

/// The [`EventKind`] of a collective op (the parked rank recovers the
/// kind from its own program when a finish arrives; in a finished
/// collective every entrant's kind equals the canonical one).
fn collective_kind(op: Op) -> EventKind {
    match op {
        Op::Allreduce { .. } => EventKind::Allreduce,
        Op::Barrier => EventKind::Barrier,
        Op::Bcast { .. } => EventKind::Bcast,
        Op::Reduce { .. } => EventKind::Reduce,
        Op::Allgather { .. } => EventKind::Allgather,
        Op::Alltoall { .. } => EventKind::Alltoall,
        _ => unreachable!("not a collective op"),
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Per-partition sink construction for the monomorphized profile
/// strategies.
trait MakeSink: ProfileSink + Sized {
    fn make(nranks: usize) -> Self;
}

impl MakeSink for LiveProfile {
    fn make(nranks: usize) -> Self {
        LiveProfile(Profile::new(nranks))
    }
}

impl MakeSink for NoProfile {
    fn make(_nranks: usize) -> Self {
        NoProfile
    }
}

/// Everything a partition hands back for the deterministic merge. The
/// per-rank vectors cover `lo..hi` only.
struct PartOut {
    lo: usize,
    hi: usize,
    clocks: Vec<f64>,
    done: Vec<bool>,
    pcs: Vec<usize>,
    timeline: Timeline,
    breakdown: Vec<[f64; EventKind::COUNT]>,
    profile: Profile,
    p2p_bytes: u64,
    internode_bytes: u64,
}

/// Process one inbox message against the partition-local state.
#[allow(clippy::too_many_arguments)]
fn process_msg<F: FaultHook>(
    msg: Msg,
    sh: &Shared<'_>,
    lo: usize,
    hi: usize,
    ranks: &mut [RankState],
    reqs: &mut [Req],
    channels: &mut Channels,
    ready: &mut ReadyQueue,
    out: &mut Outgoing,
    coll_finish: &mut Vec<Option<f64>>,
    frozen: &[bool],
    faults: &F,
) {
    match msg {
        Msg::Send {
            from,
            to,
            tag,
            time,
            bytes,
            ireq,
        } => {
            let slot = channels.slot(&sh.np, from, to, tag);
            let ch = &mut channels.store[slot as usize];
            ch.sends.push(SendPost { time, bytes, ireq });
            match_remote_origin(
                sh.np.eager_threshold,
                ch,
                from,
                to,
                reqs,
                ready,
                out,
                &sh.part_of,
                faults,
            );
        }
        Msg::RdvDone {
            rank,
            ireq,
            done_at,
        } => {
            let q = &mut reqs[ireq];
            q.done_at = done_at;
            q.done = true;
            ready.wake(rank, usize::MAX);
        }
        Msg::CollFinish { seq, finish } => {
            set_finish(coll_finish, seq, finish);
            // Every non-done local rank entered this collective (the
            // finish required all ranks), so wake them all; spurious
            // wakes of ranks blocked on requests are harmless.
            for r in lo..hi {
                if !ranks[r].done && !frozen[r] {
                    ready.wake(r, usize::MAX);
                }
            }
        }
    }
}

/// One partition worker: the sequential ready-queue scheduler over
/// `lo..hi`, with remote peers reached through the message protocol.
fn worker<P: MakeSink, F: FaultHook, const TRACE: bool>(
    sh: &Shared<'_>,
    faults: &F,
    me: usize,
) -> PartOut {
    let nranks = sh.programs.len();
    let nparts = sh.parts.len();
    let (lo, hi) = (sh.parts[me].start, sh.parts[me].end);

    // Full-size, globally indexed state: only this partition's slots
    // (plus remote-completed rendezvous slots of local senders) are
    // ever touched, but global indexing keeps the arena numbering — and
    // with it the flaky-link draws — identical to the sequential run.
    let mut ranks: Vec<RankState> = (0..nranks)
        .map(|r| RankState {
            pc: 0,
            clock: 0.0,
            blocked: None,
            done: false,
            req_next: sh.arena_start[r],
            req_end: sh.arena_start[r + 1],
            send_memo: ChanMemo::EMPTY,
            recv_memo: ChanMemo::EMPTY,
            user_reqs: Vec::new(),
            coll_seq: 0,
        })
        .collect();
    let mut reqs: Vec<Req> = vec![
        Req {
            done_at: 0.0,
            class: ReqClass::Recv,
            done: false,
        };
        sh.arena_total
    ];
    let mut channels = Channels::default();
    let mut timeline = Timeline::new(nranks);
    let mut breakdown: Vec<[f64; EventKind::COUNT]> = vec![[0.0; EventKind::COUNT]; nranks];
    let mut profile = P::make(nranks);
    let mut p2p_bytes: u64 = 0;
    let mut internode_bytes: u64 = 0;
    let mut ready = ReadyQueue::with_range(nranks, lo, hi);
    let mut frozen = vec![false; nranks];
    let mut coll_finish: Vec<Option<f64>> = Vec::new();
    let mut out = Outgoing::new(nparts);
    let mut next_flush = sh.lookahead;

    'main: loop {
        // Drain the inbox in one batch; `delivered` is credited only
        // after processing so in-flight messages keep the quiescence
        // test failing.
        let msgs: VecDeque<Msg> = std::mem::take(&mut *lock(&sh.inboxes[me].queue));
        if !msgs.is_empty() {
            for &m in &msgs {
                process_msg(
                    m,
                    sh,
                    lo,
                    hi,
                    &mut ranks,
                    &mut reqs,
                    &mut channels,
                    &mut ready,
                    &mut out,
                    &mut coll_finish,
                    &frozen,
                    faults,
                );
            }
            sh.delivered.fetch_add(msgs.len() as u64, Ordering::SeqCst);
        }

        while let Some(r) = ready.pop() {
            if sh.stop.load(Ordering::SeqCst) {
                break 'main;
            }
            if ranks[r].done || frozen[r] {
                continue;
            }
            'rank: loop {
                if F::ENABLED {
                    if faults.cancelled() {
                        sh.cancelled.store(true, Ordering::SeqCst);
                        stop_all(sh);
                        break 'main;
                    }
                    if ranks[r].clock >= faults.crash_at(r) {
                        // Freeze only this rank and drain the rest to
                        // quiescence; the smallest `(at_s, rank)`
                        // candidate wins the blame after the join.
                        lock(&sh.crashes).push(CrashCand {
                            at_s: ranks[r].clock,
                            rank: r,
                            pc: ranks[r].pc,
                        });
                        frozen[r] = true;
                        break 'rank;
                    }
                }
                match ranks[r].blocked {
                    Some(Blocked::Reqs {
                        reqs: set,
                        kind,
                        start,
                    }) => {
                        if !Engine::try_unblock_reqs::<P, TRACE>(
                            r,
                            set,
                            kind,
                            start,
                            &mut ranks,
                            &reqs,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        ) {
                            break 'rank;
                        }
                        continue 'rank;
                    }
                    Some(Blocked::Collective { start }) => {
                        let seq = ranks[r].coll_seq;
                        let Some(finish) = coll_finish.get(seq).copied().flatten() else {
                            break 'rank;
                        };
                        let kind = collective_kind(sh.programs[r].ops[ranks[r].pc]);
                        Engine::unblock_collective::<P, TRACE>(
                            r,
                            start,
                            finish,
                            kind,
                            &mut ranks,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        );
                        continue 'rank;
                    }
                    None => {}
                }

                if ranks[r].pc >= sh.programs[r].ops.len() {
                    ranks[r].done = true;
                    break 'rank;
                }

                let op = sh.programs[r].ops[ranks[r].pc];
                let clock = ranks[r].clock;
                match op {
                    Op::Compute { seconds } => {
                        let (total, stall) = if F::ENABLED {
                            let t = faults.compute_seconds(r, ranks[r].pc, clock, seconds);
                            (t, (t - seconds).max(0.0))
                        } else {
                            (seconds, 0.0)
                        };
                        if TRACE {
                            timeline.record(r, clock, clock + total, EventKind::Compute);
                        }
                        breakdown[r][EventKind::Compute.index()] += total;
                        if F::ENABLED && stall > 0.0 {
                            profile.phase(r, crate::profile::Phase::Compute, total - stall);
                            profile.phase(r, crate::profile::Phase::FaultStall, stall);
                        } else {
                            profile.phase(r, crate::profile::Phase::Compute, total);
                        }
                        ranks[r].clock += total;
                        ranks[r].pc += 1;
                    }
                    Op::Send { to, tag, bytes } => {
                        let eager = bytes < sh.np.eager_threshold;
                        let (ireq, same_node) = if sh.part_of[to] as usize == me {
                            Engine::post_send(
                                &sh.np,
                                &mut ranks,
                                &mut reqs,
                                &mut channels,
                                &mut ready,
                                r,
                                to,
                                tag,
                                bytes,
                                clock,
                                eager,
                                faults,
                            )
                        } else {
                            post_send_remote(
                                sh, &mut ranks, &mut reqs, &mut out, r, to, tag, bytes, clock,
                                eager,
                            )
                        };
                        profile.message(r, to, bytes, regime_of(eager));
                        p2p_bytes += bytes as u64;
                        if !same_node {
                            internode_bytes += bytes as u64;
                        }
                        let set = ReqSet::one(ireq);
                        if !Engine::try_unblock_reqs::<P, TRACE>(
                            r,
                            set,
                            EventKind::Send,
                            clock,
                            &mut ranks,
                            &reqs,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        ) {
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: set,
                                kind: EventKind::Send,
                                start: clock,
                            });
                            break 'rank;
                        }
                    }
                    Op::Recv { from, tag } => {
                        let ireq = if sh.part_of[from] as usize == me {
                            Engine::post_recv(
                                &sh.np,
                                &mut ranks,
                                &mut reqs,
                                &mut channels,
                                &mut ready,
                                from,
                                r,
                                tag,
                                clock,
                                faults,
                            )
                        } else {
                            post_recv_remote(
                                sh,
                                &mut ranks,
                                &mut reqs,
                                &mut channels,
                                &mut ready,
                                &mut out,
                                from,
                                r,
                                tag,
                                clock,
                                faults,
                            )
                        };
                        let set = ReqSet::one(ireq);
                        if !Engine::try_unblock_reqs::<P, TRACE>(
                            r,
                            set,
                            EventKind::Recv,
                            clock,
                            &mut ranks,
                            &reqs,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        ) {
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: set,
                                kind: EventKind::Recv,
                                start: clock,
                            });
                            break 'rank;
                        }
                    }
                    Op::Sendrecv {
                        to,
                        send_bytes,
                        from,
                        tag,
                    } => {
                        let eager = send_bytes < sh.np.eager_threshold;
                        let (s, same_node) = if sh.part_of[to] as usize == me {
                            Engine::post_send(
                                &sh.np,
                                &mut ranks,
                                &mut reqs,
                                &mut channels,
                                &mut ready,
                                r,
                                to,
                                tag,
                                send_bytes,
                                clock,
                                eager,
                                faults,
                            )
                        } else {
                            post_send_remote(
                                sh, &mut ranks, &mut reqs, &mut out, r, to, tag, send_bytes, clock,
                                eager,
                            )
                        };
                        let v = if sh.part_of[from] as usize == me {
                            Engine::post_recv(
                                &sh.np,
                                &mut ranks,
                                &mut reqs,
                                &mut channels,
                                &mut ready,
                                from,
                                r,
                                tag,
                                clock,
                                faults,
                            )
                        } else {
                            post_recv_remote(
                                sh,
                                &mut ranks,
                                &mut reqs,
                                &mut channels,
                                &mut ready,
                                &mut out,
                                from,
                                r,
                                tag,
                                clock,
                                faults,
                            )
                        };
                        profile.message(r, to, send_bytes, regime_of(eager));
                        p2p_bytes += send_bytes as u64;
                        if !same_node {
                            internode_bytes += send_bytes as u64;
                        }
                        let set = ReqSet::two(s, v);
                        if !Engine::try_unblock_reqs::<P, TRACE>(
                            r,
                            set,
                            EventKind::Sendrecv,
                            clock,
                            &mut ranks,
                            &reqs,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        ) {
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: set,
                                kind: EventKind::Sendrecv,
                                start: clock,
                            });
                            break 'rank;
                        }
                    }
                    Op::Isend {
                        to,
                        tag,
                        bytes,
                        req,
                    } => {
                        let eager = bytes < sh.np.eager_threshold;
                        let (ireq, same_node) = if sh.part_of[to] as usize == me {
                            Engine::post_send(
                                &sh.np,
                                &mut ranks,
                                &mut reqs,
                                &mut channels,
                                &mut ready,
                                r,
                                to,
                                tag,
                                bytes,
                                clock,
                                eager,
                                faults,
                            )
                        } else {
                            post_send_remote(
                                sh, &mut ranks, &mut reqs, &mut out, r, to, tag, bytes, clock,
                                eager,
                            )
                        };
                        Engine::set_user_req(&mut ranks[r].user_reqs, req, ireq);
                        ranks[r].pc += 1;
                        profile.message(r, to, bytes, regime_of(eager));
                        p2p_bytes += bytes as u64;
                        if !same_node {
                            internode_bytes += bytes as u64;
                        }
                    }
                    Op::Irecv { from, tag, req } => {
                        let ireq = if sh.part_of[from] as usize == me {
                            Engine::post_recv(
                                &sh.np,
                                &mut ranks,
                                &mut reqs,
                                &mut channels,
                                &mut ready,
                                from,
                                r,
                                tag,
                                clock,
                                faults,
                            )
                        } else {
                            post_recv_remote(
                                sh,
                                &mut ranks,
                                &mut reqs,
                                &mut channels,
                                &mut ready,
                                &mut out,
                                from,
                                r,
                                tag,
                                clock,
                                faults,
                            )
                        };
                        Engine::set_user_req(&mut ranks[r].user_reqs, req, ireq);
                        ranks[r].pc += 1;
                    }
                    Op::Wait { req } => {
                        let ireq = ranks[r].user_reqs[req as usize];
                        let set = ReqSet::one(ireq);
                        if !Engine::try_unblock_reqs::<P, TRACE>(
                            r,
                            set,
                            EventKind::Wait,
                            clock,
                            &mut ranks,
                            &reqs,
                            &mut timeline,
                            &mut breakdown,
                            &mut profile,
                        ) {
                            ranks[r].blocked = Some(Blocked::Reqs {
                                reqs: set,
                                kind: EventKind::Wait,
                                start: clock,
                            });
                            break 'rank;
                        }
                    }
                    Op::Allreduce { .. }
                    | Op::Barrier
                    | Op::Bcast { .. }
                    | Op::Reduce { .. }
                    | Op::Allgather { .. }
                    | Op::Alltoall { .. } => {
                        let (kind, bytes) = match op {
                            Op::Allreduce { bytes } => (EventKind::Allreduce, bytes),
                            Op::Barrier => (EventKind::Barrier, 0),
                            Op::Bcast { bytes, .. } => (EventKind::Bcast, bytes),
                            Op::Reduce { bytes, .. } => (EventKind::Reduce, bytes),
                            Op::Allgather { bytes } => (EventKind::Allgather, bytes),
                            Op::Alltoall { bytes } => (EventKind::Alltoall, bytes),
                            _ => unreachable!(),
                        };
                        let seq = ranks[r].coll_seq;
                        match enter_global(
                            sh,
                            me,
                            r,
                            seq,
                            kind,
                            bytes,
                            clock,
                            &mut out,
                            &mut coll_finish,
                        ) {
                            Enter::Finished(finish) => {
                                // A finished collective is a global
                                // synchronization point every other
                                // partition is parked on — release the
                                // broadcast immediately.
                                flush(sh, &mut out);
                                next_flush = clock + sh.lookahead;
                                for wr in lo..hi {
                                    if wr != r && !ranks[wr].done && !frozen[wr] {
                                        ready.wake(wr, r);
                                    }
                                }
                                Engine::unblock_collective::<P, TRACE>(
                                    r,
                                    clock,
                                    finish,
                                    kind,
                                    &mut ranks,
                                    &mut timeline,
                                    &mut breakdown,
                                    &mut profile,
                                );
                            }
                            Enter::Pending => {
                                ranks[r].blocked = Some(Blocked::Collective { start: clock });
                                break 'rank;
                            }
                            Enter::Mismatch => {
                                frozen[r] = true;
                                break 'rank;
                            }
                        }
                    }
                }
            }
            // The lookahead horizon: withhold cross-partition traffic
            // for at most one inter-node latency of this partition's
            // virtual time (or FLUSH_CAP messages, whichever is first).
            if out.pending >= FLUSH_CAP || (out.pending > 0 && ranks[r].clock >= next_flush) {
                flush(sh, &mut out);
                next_flush = ranks[r].clock + sh.lookahead;
            }
        }

        if sh.stop.load(Ordering::SeqCst) {
            break 'main;
        }
        flush(sh, &mut out);

        // Idle protocol: park on the inbox condvar; the last idler with
        // sent == delivered declares quiescence and stops everyone.
        {
            let inbox = &sh.inboxes[me];
            let mut q = lock(&inbox.queue);
            if !q.is_empty() {
                continue 'main;
            }
            let idlers = sh.idle.fetch_add(1, Ordering::SeqCst) + 1;
            if idlers == nparts
                && sh.sent.load(Ordering::SeqCst) == sh.delivered.load(Ordering::SeqCst)
            {
                sh.idle.fetch_sub(1, Ordering::SeqCst);
                drop(q);
                stop_all(sh);
                break 'main;
            }
            loop {
                if sh.stop.load(Ordering::SeqCst) {
                    sh.idle.fetch_sub(1, Ordering::SeqCst);
                    break 'main;
                }
                if !q.is_empty() {
                    sh.idle.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
                q = inbox.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    PartOut {
        lo,
        hi,
        clocks: ranks[lo..hi].iter().map(|s| s.clock).collect(),
        done: ranks[lo..hi].iter().map(|s| s.done).collect(),
        pcs: ranks[lo..hi].iter().map(|s| s.pc).collect(),
        timeline,
        breakdown,
        profile: profile.finish(),
        p2p_bytes,
        internode_bytes,
    }
}

// ---------------------------------------------------------------------------
// Entry point, error resolution, merge
// ---------------------------------------------------------------------------

/// Run `engine` under the parallel scheduler with `threads` partitions.
/// Called from [`Engine::run_prevalidated`] when
/// [`SimConfig::threads`](crate::engine::SimConfig) `> 1` (already
/// clamped to the rank count).
pub(crate) fn run_parallel(
    engine: Engine,
    prepass: &Prepass,
    threads: usize,
) -> Result<SimResult, SimError> {
    let nranks = engine.programs.len();
    // Same dispatch as the sequential engine: fault-capable
    // instantiations only when a plan or a cancellation token exists.
    if !engine.config.faults.is_none() || engine.cancel.is_some() {
        let hook = ActiveFaults::compile(&engine.config.faults, nranks, engine.cancel.clone());
        match (engine.config.profile, engine.config.trace) {
            (true, false) => run_pdes::<LiveProfile, _, false>(&engine, prepass, threads, &hook),
            (true, true) => run_pdes::<LiveProfile, _, true>(&engine, prepass, threads, &hook),
            (false, false) => run_pdes::<NoProfile, _, false>(&engine, prepass, threads, &hook),
            (false, true) => run_pdes::<NoProfile, _, true>(&engine, prepass, threads, &hook),
        }
    } else {
        match (engine.config.profile, engine.config.trace) {
            (true, false) => {
                run_pdes::<LiveProfile, _, false>(&engine, prepass, threads, &NoFaults)
            }
            (true, true) => run_pdes::<LiveProfile, _, true>(&engine, prepass, threads, &NoFaults),
            (false, false) => run_pdes::<NoProfile, _, false>(&engine, prepass, threads, &NoFaults),
            (false, true) => run_pdes::<NoProfile, _, true>(&engine, prepass, threads, &NoFaults),
        }
    }
}

fn run_pdes<P: MakeSink, F: FaultHook + Sync, const TRACE: bool>(
    engine: &Engine,
    prepass: &Prepass,
    threads: usize,
    faults: &F,
) -> Result<SimResult, SimError> {
    let nranks = engine.programs.len();
    let np = NetParams::of(&engine.net, nranks);
    let parts = partition_ranks(nranks, threads, &np.node_of);
    let nparts = parts.len();
    let mut part_of = vec![0u32; nranks];
    for (i, rg) in parts.iter().enumerate() {
        for r in rg.clone() {
            part_of[r] = i as u32;
        }
    }
    let mut arena_start = Vec::with_capacity(nranks + 1);
    let mut acc = 0usize;
    arena_start.push(0);
    for r in 0..nranks {
        acc += prepass.p2p_ops[r];
        arena_start.push(acc);
    }
    let lookahead = engine.net.lookahead();
    let sh = Shared {
        np,
        net: &engine.net,
        programs: &engine.programs,
        parts,
        part_of,
        arena_start,
        arena_total: acc,
        lookahead,
        inboxes: (0..nparts).map(|_| Inbox::default()).collect(),
        sent: AtomicU64::new(0),
        delivered: AtomicU64::new(0),
        idle: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        cancelled: AtomicBool::new(false),
        colls: Mutex::new(Vec::new()),
        crashes: Mutex::new(Vec::new()),
    };

    let outs: Vec<PartOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nparts)
            .map(|me| {
                let sh = &sh;
                scope.spawn(move || worker::<P, F, TRACE>(sh, faults, me))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pdes worker panicked"))
            .collect()
    });

    // Canonical error precedence (see the module docs): cancellation,
    // then the earliest crash, then the collective mismatch, then
    // deadlock — every payload independent of thread count.
    if sh.cancelled.load(Ordering::SeqCst) {
        return Err(SimError::Cancelled);
    }
    let mut crashes = sh.crashes.into_inner().unwrap_or_else(|e| e.into_inner());
    crashes.sort_by(|a, b| {
        a.at_s
            .partial_cmp(&b.at_s)
            .expect("finite crash times")
            .then(a.rank.cmp(&b.rank))
    });
    if let Some(c) = crashes.first() {
        return Err(SimError::RankFailed {
            rank: c.rank,
            op_index: c.pc,
            at_s: c.at_s,
        });
    }
    let colls = sh.colls.into_inner().unwrap_or_else(|e| e.into_inner());
    for (seq, e) in colls.iter().enumerate() {
        if let Some((rank, found)) = e.mismatch {
            return Err(SimError::CollectiveMismatch {
                seq,
                rank,
                expected: Engine::collective_name(e.kind),
                found: Engine::collective_name(found),
            });
        }
    }

    // Deterministic merge: scatter owner-written per-rank state, add
    // the commutative aggregates.
    let mut finish_times = vec![0.0f64; nranks];
    let mut done = vec![false; nranks];
    let mut pcs = vec![0usize; nranks];
    let mut timeline = Timeline::new(nranks);
    let mut breakdown = vec![[0.0f64; EventKind::COUNT]; nranks];
    let mut p2p_bytes = 0u64;
    let mut internode_bytes = 0u64;
    let mut profile = if P::ENABLED {
        Profile::new(nranks)
    } else {
        Profile::default()
    };
    for po in &outs {
        for (i, r) in (po.lo..po.hi).enumerate() {
            finish_times[r] = po.clocks[i];
            done[r] = po.done[i];
            pcs[r] = po.pcs[i];
            breakdown[r] = po.breakdown[r];
        }
        timeline.absorb(&po.timeline);
        if P::ENABLED {
            profile.absorb_partition(&po.profile, po.lo, po.hi);
        }
        p2p_bytes += po.p2p_bytes;
        internode_bytes += po.internode_bytes;
    }

    if done.iter().any(|&d| !d) {
        let blocked = (0..nranks)
            .filter(|&r| !done[r])
            .map(|r| {
                let pc = pcs[r].min(engine.programs[r].ops.len().saturating_sub(1));
                (r, pcs[r], engine.programs[r].ops[pc])
            })
            .collect();
        return Err(SimError::Deadlock(blocked));
    }

    let makespan = finish_times.iter().copied().fold(0.0, f64::max);
    Ok(SimResult {
        makespan,
        finish_times,
        timeline,
        p2p_bytes,
        internode_bytes,
        per_rank_breakdown: breakdown,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes(parts: &[Range<usize>]) -> Vec<usize> {
        parts.iter().map(|r| r.len()).collect()
    }

    #[test]
    fn partitions_cover_contiguously() {
        let node_of: Vec<u32> = (0..100).map(|r| (r / 16) as u32).collect();
        for p in 1..=10 {
            let parts = partition_ranks(100, p, &node_of);
            assert_eq!(parts.len(), p);
            assert_eq!(parts[0].start, 0);
            assert_eq!(parts.last().unwrap().end, 100);
            for w in parts.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            assert!(parts.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn cuts_snap_to_node_boundaries() {
        // 64 ranks, 16 per node: every even split at 4 parts lands
        // exactly on a node boundary, snapping must keep it there.
        let node_of: Vec<u32> = (0..64).map(|r| (r / 16) as u32).collect();
        let parts = partition_ranks(64, 4, &node_of);
        assert_eq!(sizes(&parts), vec![16, 16, 16, 16]);
        // 60 ranks, 16 per node: the even split at 3 parts is 20/20/20,
        // but node boundaries at 16/32/48 are within half a partition
        // width — cuts snap to them.
        let node_of: Vec<u32> = (0..60).map(|r| (r / 16) as u32).collect();
        let parts = partition_ranks(60, 3, &node_of);
        assert_eq!(sizes(&parts), vec![16, 16, 28]);
    }

    #[test]
    fn single_node_gets_even_split() {
        let node_of = vec![0u32; 31];
        let parts = partition_ranks(31, 4, &node_of);
        assert_eq!(sizes(&parts), vec![7, 8, 8, 8]);
    }

    #[test]
    fn more_parts_than_ranks_clamps() {
        let node_of = vec![0u32; 3];
        let parts = partition_ranks(3, 8, &node_of);
        assert_eq!(sizes(&parts), vec![1, 1, 1]);
    }

    #[test]
    fn nearest_boundary_picks_closest() {
        assert_eq!(nearest_boundary(&[], 5), None);
        assert_eq!(nearest_boundary(&[16, 32], 20), Some(16));
        assert_eq!(nearest_boundary(&[16, 32], 30), Some(32));
        assert_eq!(nearest_boundary(&[16, 32], 24), Some(16)); // tie → smaller
        assert_eq!(nearest_boundary(&[16], 3), Some(16));
        assert_eq!(nearest_boundary(&[16], 40), Some(16));
    }
}
