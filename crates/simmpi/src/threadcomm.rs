//! Real, in-process message passing over host threads.
//!
//! [`ThreadWorld::run`] spawns one thread per rank and executes a kernel
//! closure with a [`ThreadComm`] handle. Data actually moves: sends copy
//! buffers through per-channel FIFO mailboxes (MPI non-overtaking rule),
//! and collectives really combine contributions from all ranks. This is
//! the substrate for *native* validation runs of the mini-kernels; timing
//! comes from the simulator, not from here.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use crate::comm::{Comm, ReduceOp};
use crate::program::Tag;

type ChannelKey = (usize, usize, Tag);

struct Mailboxes {
    boxes: Mutex<HashMap<ChannelKey, VecDeque<Vec<f64>>>>,
    available: Condvar,
}

struct CollectiveState {
    /// Monotone collective counter.
    generation: u64,
    /// Ranks that have contributed to the current generation.
    arrived: usize,
    /// Accumulated buffer for the current generation.
    acc: Vec<f64>,
    /// Finished results: generation → (result, remaining readers).
    results: HashMap<u64, (Arc<Vec<f64>>, usize)>,
}

struct Shared {
    n: usize,
    mail: Mailboxes,
    coll: Mutex<CollectiveState>,
    coll_done: Condvar,
}

/// A communicator world backed by host threads.
pub struct ThreadWorld {
    shared: Arc<Shared>,
}

impl ThreadWorld {
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "world must have at least one rank");
        ThreadWorld {
            shared: Arc::new(Shared {
                n: nranks,
                mail: Mailboxes {
                    boxes: Mutex::new(HashMap::new()),
                    available: Condvar::new(),
                },
                coll: Mutex::new(CollectiveState {
                    generation: 0,
                    arrived: 0,
                    acc: Vec::new(),
                    results: HashMap::new(),
                }),
                coll_done: Condvar::new(),
            }),
        }
    }

    /// Handle for one rank. Each rank must be taken exactly once and
    /// moved to its own thread.
    pub fn comm(&self, rank: usize) -> ThreadComm {
        assert!(rank < self.shared.n);
        ThreadComm {
            rank,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Convenience: run `f(rank, comm)` on one thread per rank and
    /// collect the per-rank return values in rank order.
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut ThreadComm) -> T + Sync,
    {
        let world = ThreadWorld::new(nranks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nranks)
                .map(|rank| {
                    let mut comm = world.comm(rank);
                    let f = &f;
                    scope.spawn(move || f(rank, &mut comm))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

/// Per-rank handle implementing [`Comm`] with real data movement.
pub struct ThreadComm {
    rank: usize,
    shared: Arc<Shared>,
}

impl ThreadComm {
    /// Collective helper: combine every rank's contribution with `op`,
    /// deliver the combined result to everyone. A barrier is the empty
    /// collective.
    fn collective(&mut self, op: ReduceOp, data: &mut [f64]) {
        let n = self.shared.n;
        if n == 1 {
            return;
        }
        let mut st = self.shared.coll.lock().expect("collective lock poisoned");
        let gen = st.generation;
        if st.arrived == 0 {
            st.acc = data.to_vec();
        } else {
            debug_assert_eq!(st.acc.len(), data.len(), "collective size mismatch");
            op.combine(&mut st.acc, data);
        }
        st.arrived += 1;
        if st.arrived == n {
            // Last arrival publishes the result and opens the next
            // generation. Readers: the other n−1 ranks.
            let result = Arc::new(std::mem::take(&mut st.acc));
            data.copy_from_slice(&result);
            st.results.insert(gen, (result, n - 1));
            st.arrived = 0;
            st.generation += 1;
            drop(st);
            self.shared.coll_done.notify_all();
        } else {
            // Wait for this generation's result, then consume one read
            // token; the last reader removes the entry.
            loop {
                if let Some((result, _)) = st.results.get(&gen) {
                    let result = Arc::clone(result);
                    data.copy_from_slice(&result);
                    let entry = st.results.get_mut(&gen).expect("entry exists");
                    entry.1 -= 1;
                    if entry.1 == 0 {
                        st.results.remove(&gen);
                    }
                    break;
                }
                st = self
                    .shared
                    .coll_done
                    .wait(st)
                    .expect("collective lock poisoned");
            }
        }
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.shared.n
    }

    fn send(&mut self, to: usize, tag: Tag, data: &[f64]) {
        assert!(to < self.shared.n, "send to out-of-range rank {to}");
        let mut boxes = self
            .shared
            .mail
            .boxes
            .lock()
            .expect("mailbox lock poisoned");
        boxes
            .entry((self.rank, to, tag))
            .or_default()
            .push_back(data.to_vec());
        drop(boxes);
        self.shared.mail.available.notify_all();
    }

    fn recv(&mut self, from: usize, tag: Tag, buf: &mut [f64]) {
        assert!(from < self.shared.n, "recv from out-of-range rank {from}");
        let key = (from, self.rank, tag);
        let mut boxes = self
            .shared
            .mail
            .boxes
            .lock()
            .expect("mailbox lock poisoned");
        loop {
            if let Some(msg) = boxes.get_mut(&key).and_then(|q| q.pop_front()) {
                assert_eq!(
                    msg.len(),
                    buf.len(),
                    "message size {} != buffer size {} on channel {key:?}",
                    msg.len(),
                    buf.len()
                );
                buf.copy_from_slice(&msg);
                return;
            }
            boxes = self
                .shared
                .mail
                .available
                .wait(boxes)
                .expect("mailbox lock poisoned");
        }
    }

    fn sendrecv(&mut self, to: usize, data: &[f64], from: usize, buf: &mut [f64], tag: Tag) {
        // Buffered send first makes the exchange deadlock-free.
        self.send(to, tag, data);
        self.recv(from, tag, buf);
    }

    fn allreduce(&mut self, op: ReduceOp, data: &mut [f64]) {
        self.collective(op, data);
    }

    fn barrier(&mut self) {
        self.collective(ReduceOp::Sum, &mut []);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_moves_real_data() {
        let n = 8;
        let sums = ThreadWorld::run(n, |rank, comm| {
            // Pass rank id around the ring; everyone accumulates.
            let mut acc = 0.0;
            let mut token = [rank as f64];
            for _ in 0..n {
                let mut incoming = [0.0];
                comm.sendrecv((rank + 1) % n, &token, (rank + n - 1) % n, &mut incoming, 0);
                token = incoming;
                acc += token[0];
            }
            acc
        });
        // Everyone saw every rank id exactly once: sum = 0+1+…+7 = 28.
        assert!(sums.iter().all(|&s| (s - 28.0).abs() < 1e-12));
    }

    #[test]
    fn allreduce_sum_matches_sequential_reduction() {
        let n = 6;
        let results = ThreadWorld::run(n, |rank, comm| {
            let mut v = vec![rank as f64, (rank * rank) as f64];
            comm.allreduce(ReduceOp::Sum, &mut v);
            v
        });
        let expect0: f64 = (0..n).map(|r| r as f64).sum();
        let expect1: f64 = (0..n).map(|r| (r * r) as f64).sum();
        for r in results {
            assert!((r[0] - expect0).abs() < 1e-12);
            assert!((r[1] - expect1).abs() < 1e-12);
        }
    }

    #[test]
    fn allreduce_min_max() {
        let results = ThreadWorld::run(5, |rank, comm| {
            let mn = comm.allreduce_scalar(ReduceOp::Min, rank as f64);
            let mx = comm.allreduce_scalar(ReduceOp::Max, rank as f64);
            (mn, mx)
        });
        for (mn, mx) in results {
            assert_eq!(mn, 0.0);
            assert_eq!(mx, 4.0);
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_generations() {
        let n = 4;
        let results = ThreadWorld::run(n, |rank, comm| {
            let mut outs = Vec::new();
            for step in 0..50 {
                let x = (rank + step) as f64;
                outs.push(comm.allreduce_scalar(ReduceOp::Sum, x));
            }
            outs
        });
        for step in 0..50 {
            let expect: f64 = (0..n).map(|r| (r + step) as f64).sum();
            for r in &results {
                assert_eq!(r[step], expect, "generation crossing at step {step}");
            }
        }
    }

    #[test]
    fn barrier_completes_for_all() {
        let results = ThreadWorld::run(7, |_, comm| {
            for _ in 0..20 {
                comm.barrier();
            }
            true
        });
        assert_eq!(results.len(), 7);
    }

    #[test]
    fn fifo_order_preserved_per_channel() {
        let results = ThreadWorld::run(2, |rank, comm| {
            if rank == 0 {
                for i in 0..100 {
                    comm.send(1, 0, &[i as f64]);
                }
                Vec::new()
            } else {
                let mut got = Vec::new();
                let mut buf = [0.0];
                for _ in 0..100 {
                    comm.recv(0, 0, &mut buf);
                    got.push(buf[0]);
                }
                got
            }
        });
        let expect: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(results[1], expect);
    }

    #[test]
    fn bcast_distributes_the_root_buffer() {
        let results = ThreadWorld::run(5, |rank, comm| {
            let mut data = if rank == 2 {
                vec![3.5, -1.25]
            } else {
                vec![9.9, 9.9]
            };
            comm.bcast(2, &mut data);
            data
        });
        for r in results {
            assert_eq!(r, vec![3.5, -1.25]);
        }
    }

    #[test]
    fn reduce_combines_onto_root() {
        let results = ThreadWorld::run(4, |rank, comm| {
            let mut data = vec![rank as f64];
            comm.reduce(0, ReduceOp::Max, &mut data);
            data[0]
        });
        assert_eq!(results[0], 3.0);
    }

    #[test]
    fn sendrecv_self_exchange() {
        let results = ThreadWorld::run(1, |_, comm| {
            let mut buf = [0.0];
            comm.sendrecv(0, &[42.0], 0, &mut buf, 5);
            buf[0]
        });
        assert_eq!(results[0], 42.0);
    }
}
