//! LogGP-style communication cost model.
//!
//! Costs depend on message size, the eager/rendezvous protocol regime,
//! and the placement of the communicating ranks (intra-node shared-memory
//! vs. inter-node InfiniBand). Collective costs use standard algorithm
//! models: dissemination barrier and recursive-doubling /
//! Rabenseifner all-reduce.

use spechpc_machine::affinity::{Pinning, PinningPolicy};
use spechpc_machine::cluster::{ClusterSpec, InterconnectSpec};

/// Communication cost model bound to a concrete placement of ranks.
#[derive(Debug, Clone)]
pub struct NetModel {
    interconnect: InterconnectSpec,
    pinning: Pinning,
    /// Sender-side CPU overhead per message (the LogGP `o`), seconds.
    pub send_overhead: f64,
}

impl NetModel {
    /// Build a model for `nprocs` compactly pinned ranks.
    pub fn compact(cluster: &ClusterSpec, nprocs: usize) -> Self {
        Self::with_pinning(
            cluster,
            Pinning::new(cluster, nprocs, PinningPolicy::Compact),
        )
    }

    /// Build a model from an explicit pinning.
    pub fn with_pinning(cluster: &ClusterSpec, pinning: Pinning) -> Self {
        NetModel {
            interconnect: cluster.interconnect.clone(),
            pinning,
            send_overhead: 0.2e-6,
        }
    }

    pub fn nprocs(&self) -> usize {
        self.pinning.nprocs()
    }

    pub fn pinning(&self) -> &Pinning {
        &self.pinning
    }

    pub fn interconnect(&self) -> &InterconnectSpec {
        &self.interconnect
    }

    /// Conservative PDES lookahead (seconds): the inter-node wire
    /// latency, i.e. the LogGP `L` of the interconnect. No message
    /// crossing a node boundary can complete sooner than this after its
    /// post, so a partitioned scheduler (see [`crate::pdes`]) may batch
    /// outgoing cross-partition traffic over windows of this width
    /// without a receiver ever observing it early.
    pub fn lookahead(&self) -> f64 {
        self.interconnect.latency_s
    }

    /// Whether a message of `bytes` uses the eager protocol.
    pub fn is_eager(&self, bytes: usize) -> bool {
        self.interconnect.is_eager(bytes)
    }

    /// Wire time of a point-to-point message between two ranks.
    pub fn p2p_time(&self, from: usize, to: usize, bytes: usize) -> f64 {
        let same_node = self.pinning.same_node(from, to);
        self.interconnect.wire_time(bytes, same_node)
    }

    /// The latency the collectives see: inter-node if the job spans more
    /// than one node, intra-node otherwise.
    fn collective_latency(&self) -> f64 {
        if self.pinning.nodes_used() > 1 {
            self.interconnect.latency_s
        } else {
            self.interconnect.intranode_latency_s
        }
    }

    /// The per-byte cost the collectives see (inverse bandwidth of the
    /// slowest path involved).
    fn collective_byte_time(&self) -> f64 {
        let bw = if self.pinning.nodes_used() > 1 {
            self.interconnect.effective_bandwidth
        } else {
            self.interconnect.intranode_bandwidth
        };
        1.0 / (bw * 1e9)
    }

    /// Dissemination barrier: `⌈log2 p⌉` rounds of small messages.
    pub fn barrier_cost(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        rounds * self.collective_latency()
    }

    /// All-reduce cost.
    ///
    /// Small buffers (below the eager threshold): recursive doubling,
    /// `⌈log2 p⌉ · (L + n·G)`. Large buffers: Rabenseifner
    /// reduce-scatter + all-gather, `2·log2(p)·L + 2·(p−1)/p·n·G`.
    pub fn allreduce_cost(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let l = self.collective_latency();
        let g = self.collective_byte_time();
        let rounds = (p as f64).log2().ceil();
        if self.is_eager(bytes) {
            rounds * (l + bytes as f64 * g)
        } else {
            2.0 * rounds * l + 2.0 * (p as f64 - 1.0) / p as f64 * bytes as f64 * g
        }
    }

    /// Broadcast cost: binomial tree, `⌈log2 p⌉ · (L + n·G)` for small
    /// buffers; scatter + allgather (van-de-Geijn),
    /// `log2(p)·L + 2·(p−1)/p·n·G`, for large ones.
    pub fn bcast_cost(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let l = self.collective_latency();
        let g = self.collective_byte_time();
        let rounds = (p as f64).log2().ceil();
        if self.is_eager(bytes) {
            rounds * (l + bytes as f64 * g)
        } else {
            rounds * l + 2.0 * (p as f64 - 1.0) / p as f64 * bytes as f64 * g
        }
    }

    /// Reduce-to-root cost: binomial tree, `⌈log2 p⌉ · (L + n·G)`, for
    /// small buffers; Rabenseifner reduce-scatter + binomial gather,
    /// `2·log2(p)·L + 2·(p−1)/p·n·G`, for large ones.
    ///
    /// Unlike broadcast's scatter + allgather (which pays `log2(p)·L`),
    /// Rabenseifner reduce traverses the tree twice, so the latency
    /// term is `2·log2(p)·L` — the same as allreduce's, while moving
    /// the same `2·(p−1)/p·n` bytes as broadcast.
    pub fn reduce_cost(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let l = self.collective_latency();
        let g = self.collective_byte_time();
        let rounds = (p as f64).log2().ceil();
        if self.is_eager(bytes) {
            rounds * (l + bytes as f64 * g)
        } else {
            2.0 * rounds * l + 2.0 * (p as f64 - 1.0) / p as f64 * bytes as f64 * g
        }
    }

    /// All-gather cost: ring algorithm, `(p−1) · (L + n·G)` with `n`
    /// the per-rank contribution.
    pub fn allgather_cost(&self, p: usize, bytes_per_rank: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let l = self.collective_latency();
        let g = self.collective_byte_time();
        (p as f64 - 1.0) * (l + bytes_per_rank as f64 * g)
    }

    /// All-to-all cost: pairwise exchange, `(p−1) · (L + n·G)` with `n`
    /// the per-peer message size.
    pub fn alltoall_cost(&self, p: usize, bytes_per_peer: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let l = self.collective_latency();
        let g = self.collective_byte_time();
        (p as f64 - 1.0) * (l + bytes_per_peer as f64 * g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;

    fn model(nprocs: usize) -> NetModel {
        NetModel::compact(&presets::cluster_a(), nprocs)
    }

    #[test]
    fn p2p_intra_node_is_cheaper() {
        let m = model(100); // spans two ClusterA nodes (72 cores/node)
        let intra = m.p2p_time(0, 1, 4096);
        let inter = m.p2p_time(0, 80, 4096);
        assert!(intra < inter);
    }

    #[test]
    fn barrier_grows_logarithmically() {
        let m2 = model(2).barrier_cost(2);
        let m4 = model(4).barrier_cost(4);
        let m16 = model(16).barrier_cost(16);
        assert!((m4 / m2 - 2.0).abs() < 1e-9);
        assert!((m16 / m2 - 4.0).abs() < 1e-9);
        assert_eq!(model(1).barrier_cost(1), 0.0);
    }

    #[test]
    fn allreduce_small_is_log_latency_bound() {
        let m = model(256);
        let t8 = m.allreduce_cost(8, 8);
        let t64 = m.allreduce_cost(64, 8);
        // 3 rounds vs 6 rounds.
        assert!((t64 / t8 - 2.0).abs() < 0.01);
    }

    #[test]
    fn allreduce_large_is_bandwidth_bound() {
        let m = model(128);
        let one_mib = m.allreduce_cost(128, 1 << 20);
        let two_mib = m.allreduce_cost(128, 2 << 20);
        // Doubling the buffer roughly doubles the cost in the
        // bandwidth-dominated regime.
        let ratio = two_mib / one_mib;
        assert!(ratio > 1.8 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = model(1);
        assert_eq!(m.allreduce_cost(1, 1 << 20), 0.0);
        assert_eq!(m.barrier_cost(1), 0.0);
    }

    #[test]
    fn single_node_job_uses_intranode_latency() {
        let single = model(36);
        let multi = model(144);
        assert!(single.barrier_cost(36) < multi.barrier_cost(36));
    }

    #[test]
    fn bcast_cheaper_than_allreduce_for_large_buffers() {
        let m = model(64);
        let n = 4 << 20;
        assert!(m.bcast_cost(64, n) < m.allreduce_cost(64, n));
    }

    #[test]
    fn large_message_collective_ordering_bcast_reduce_allreduce() {
        // Large buffers: broadcast (scatter + allgather) pays log2(p)·L,
        // Rabenseifner reduce pays 2·log2(p)·L — strictly more — and
        // allreduce is never cheaper than reduce. All three move the
        // same 2·(p−1)/p·n bytes.
        for p in [3usize, 6, 64, 100] {
            let m = model(p.max(64));
            let n = 4 << 20;
            let bcast = m.bcast_cost(p, n);
            let reduce = m.reduce_cost(p, n);
            let allreduce = m.allreduce_cost(p, n);
            assert!(bcast < reduce, "p={p}: bcast {bcast} !< reduce {reduce}");
            assert!(
                reduce <= allreduce + 1e-15,
                "p={p}: reduce {reduce} !<= allreduce {allreduce}"
            );
            // The reduce-vs-bcast gap is pure latency (one extra
            // log2(p)·L leg), so it must not depend on the buffer size.
            let gap_4m = reduce - bcast;
            let gap_8m = m.reduce_cost(p, 2 * n) - m.bcast_cost(p, 2 * n);
            assert!(
                (gap_4m - gap_8m).abs() < 1e-12,
                "p={p}: gap changed with size: {gap_4m} vs {gap_8m}"
            );
        }
        // Small (eager) buffers: binomial tree for both directions —
        // reduce and bcast agree.
        let m = model(64);
        assert!((m.reduce_cost(64, 256) - m.bcast_cost(64, 256)).abs() < 1e-18);
    }

    #[test]
    fn allgather_and_alltoall_scale_linearly_in_ranks() {
        let m = model(256);
        let g32 = m.allgather_cost(32, 4096);
        let g64 = m.allgather_cost(64, 4096);
        assert!((g64 / g32 - 63.0 / 31.0).abs() < 1e-9);
        let a32 = m.alltoall_cost(32, 4096);
        let a64 = m.alltoall_cost(64, 4096);
        assert!((a64 / a32 - 63.0 / 31.0).abs() < 1e-9);
        assert_eq!(m.allgather_cost(1, 4096), 0.0);
        assert_eq!(m.alltoall_cost(1, 4096), 0.0);
    }

    #[test]
    fn eager_classification_delegates_to_interconnect() {
        let m = model(4);
        assert!(m.is_eager(8));
        assert!(!m.is_eager(1 << 20));
    }

    #[test]
    fn non_power_of_two_ranks_round_up_to_next_power() {
        // ⌈log2⌉ rounds: p = 3 behaves like p = 4, p = 6 like p = 8.
        let m = model(64);
        assert_eq!(m.barrier_cost(3), m.barrier_cost(4));
        assert_eq!(m.barrier_cost(6), m.barrier_cost(8));
        assert!(m.barrier_cost(100) > m.barrier_cost(64));
        assert_eq!(m.allreduce_cost(3, 8), m.allreduce_cost(4, 8));
        // Bandwidth terms carry the exact (p−1)/p factor, so large
        // buffers do distinguish 3 from 4.
        assert!(m.allreduce_cost(3, 4 << 20) < m.allreduce_cost(4, 4 << 20));
    }

    #[test]
    fn zero_byte_collectives_cost_latency_only() {
        let m = model(8);
        let ar = m.allreduce_cost(8, 0);
        assert!(ar > 0.0, "latency still applies");
        assert_eq!(m.bcast_cost(8, 0), m.reduce_cost(8, 0));
        // Adding payload can only increase cost.
        assert!(m.allreduce_cost(8, 4096) > ar);
    }

    #[test]
    fn zero_byte_p2p_costs_latency_only() {
        let m = model(100);
        let t0 = m.p2p_time(0, 80, 0);
        assert!(t0 > 0.0);
        assert!(m.p2p_time(0, 80, 1 << 20) > t0);
    }
}
