//! The communication interface the mini-kernels program against.
//!
//! Kernels are written once against [`Comm`] and can then be executed
//! *natively* (data really moves between host threads, collectives really
//! reduce — see [`crate::threadcomm`]) for correctness validation at
//! small scale. The *simulated* cluster-scale path does not execute
//! kernel numerics; it replays the kernels' communication patterns (see
//! `spechpc_kernels`' `step_program`s) through the [`crate::engine`].

use crate::program::Tag;

/// Reduction operators supported by [`Comm::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    /// Apply the operator element-wise: `acc[i] = op(acc[i], x[i])`.
    pub fn combine(self, acc: &mut [f64], x: &[f64]) {
        debug_assert_eq!(acc.len(), x.len());
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(x).for_each(|(a, b)| *a += b),
            ReduceOp::Min => acc.iter_mut().zip(x).for_each(|(a, b)| *a = a.min(*b)),
            ReduceOp::Max => acc.iter_mut().zip(x).for_each(|(a, b)| *a = a.max(*b)),
        }
    }
}

/// Blocking message-passing interface (an MPI subset sufficient for the
/// nine SPEChpc kernel analogs).
pub trait Comm {
    /// This process's rank in `0..nranks()`.
    fn rank(&self) -> usize;
    /// Total number of ranks.
    fn nranks(&self) -> usize;
    /// Blocking standard-mode send.
    fn send(&mut self, to: usize, tag: Tag, data: &[f64]);
    /// Blocking receive; `buf` must be sized to the incoming message.
    fn recv(&mut self, from: usize, tag: Tag, buf: &mut [f64]);
    /// Combined exchange, deadlock-free even for cyclic patterns.
    fn sendrecv(&mut self, to: usize, data: &[f64], from: usize, buf: &mut [f64], tag: Tag);
    /// Global element-wise reduction; the result replaces `data` on every
    /// rank.
    fn allreduce(&mut self, op: ReduceOp, data: &mut [f64]);
    /// Global synchronization.
    fn barrier(&mut self);

    /// Broadcast `data` from `root` to every rank. The default
    /// implementation rides on [`Comm::allreduce`]: non-root ranks
    /// contribute zeros and sum-reduce, which is semantically exact for
    /// finite values.
    fn bcast(&mut self, root: usize, data: &mut [f64]) {
        if self.rank() != root {
            data.iter_mut().for_each(|x| *x = 0.0);
        }
        self.allreduce(ReduceOp::Sum, data);
    }

    /// Reduce element-wise onto `root`; other ranks' buffers hold the
    /// same combined result afterwards in the default implementation
    /// (a valid, if chatty, realization of MPI_Reduce semantics at
    /// root).
    fn reduce(&mut self, _root: usize, op: ReduceOp, data: &mut [f64]) {
        self.allreduce(op, data);
    }

    /// Convenience: all-reduce a single scalar.
    fn allreduce_scalar(&mut self, op: ReduceOp, x: f64) -> f64 {
        let mut buf = [x];
        self.allreduce(op, &mut buf);
        buf[0]
    }
}

/// Trivial [`Comm`] for single-rank execution: sends to self are stored
/// and matched by subsequent receives; collectives are no-ops.
#[derive(Debug, Default)]
pub struct SelfComm {
    /// Self-messages in flight, keyed by tag (FIFO per tag).
    pending: std::collections::HashMap<Tag, std::collections::VecDeque<Vec<f64>>>,
}

impl SelfComm {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Comm for SelfComm {
    fn rank(&self) -> usize {
        0
    }
    fn nranks(&self) -> usize {
        1
    }
    fn send(&mut self, to: usize, tag: Tag, data: &[f64]) {
        assert_eq!(to, 0, "SelfComm can only send to rank 0");
        self.pending
            .entry(tag)
            .or_default()
            .push_back(data.to_vec());
    }
    fn recv(&mut self, from: usize, tag: Tag, buf: &mut [f64]) {
        assert_eq!(from, 0, "SelfComm can only receive from rank 0");
        let msg = self
            .pending
            .get_mut(&tag)
            .and_then(|q| q.pop_front())
            .expect("receive without a matching self-send");
        assert_eq!(msg.len(), buf.len(), "message/buffer size mismatch");
        buf.copy_from_slice(&msg);
    }
    fn sendrecv(&mut self, to: usize, data: &[f64], from: usize, buf: &mut [f64], tag: Tag) {
        self.send(to, tag, data);
        self.recv(from, tag, buf);
    }
    fn allreduce(&mut self, _op: ReduceOp, _data: &mut [f64]) {}
    fn barrier(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_ops_combine_elementwise() {
        let mut acc = vec![1.0, 5.0, -2.0];
        ReduceOp::Sum.combine(&mut acc, &[1.0, 1.0, 1.0]);
        assert_eq!(acc, vec![2.0, 6.0, -1.0]);
        ReduceOp::Min.combine(&mut acc, &[0.0, 10.0, -5.0]);
        assert_eq!(acc, vec![0.0, 6.0, -5.0]);
        ReduceOp::Max.combine(&mut acc, &[3.0, 0.0, 0.0]);
        assert_eq!(acc, vec![3.0, 6.0, 0.0]);
    }

    #[test]
    fn self_comm_roundtrip() {
        let mut c = SelfComm::new();
        c.send(0, 3, &[1.0, 2.0]);
        let mut buf = [0.0; 2];
        c.recv(0, 3, &mut buf);
        assert_eq!(buf, [1.0, 2.0]);
    }

    #[test]
    fn self_comm_fifo_per_tag() {
        let mut c = SelfComm::new();
        c.send(0, 0, &[1.0]);
        c.send(0, 0, &[2.0]);
        c.send(0, 1, &[9.0]);
        let mut b = [0.0];
        c.recv(0, 1, &mut b);
        assert_eq!(b, [9.0]);
        c.recv(0, 0, &mut b);
        assert_eq!(b, [1.0]);
        c.recv(0, 0, &mut b);
        assert_eq!(b, [2.0]);
    }

    #[test]
    fn self_comm_allreduce_scalar_is_identity() {
        let mut c = SelfComm::new();
        assert_eq!(c.allreduce_scalar(ReduceOp::Sum, 4.2), 4.2);
    }

    #[test]
    fn bcast_default_impl_single_rank() {
        let mut c = SelfComm::new();
        let mut data = [1.0, 2.0];
        c.bcast(0, &mut data);
        assert_eq!(data, [1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "matching self-send")]
    fn self_comm_recv_without_send_panics() {
        let mut c = SelfComm::new();
        let mut b = [0.0];
        c.recv(0, 0, &mut b);
    }
}
