//! # spechpc-simmpi — discrete-event MPI simulator and tracing
//!
//! The paper studies the *MPI-only* variants of the SPEChpc 2021 suite and
//! derives several key findings from MPI behaviour: the `minisweep`
//! communication-serialization bug (synchronous rendezvous sends rippling
//! through an open-boundary chain, §4.1.5), dominating `MPI_Allreduce`
//! overhead in `soma` (§5.1.2), and the avoidable `MPI_Barrier` in `lbm`.
//!
//! This crate provides the message-passing substrate those findings need:
//!
//! * [`program`] — an abstract per-rank *program* of operations
//!   (compute, blocking/non-blocking point-to-point, collectives),
//! * [`netmodel`] — LogGP-style communication costs on top of
//!   [`spechpc_machine`]'s interconnect and placement models, with
//!   eager vs. synchronous-rendezvous protocol semantics,
//! * [`engine`] — a deterministic discrete-event engine executing one
//!   program per rank with MPI matching semantics (FIFO per channel,
//!   rendezvous hand-shakes, globally ordered collectives) and deadlock
//!   detection,
//! * [`pdes`] — the conservative parallel scheduler behind
//!   [`SimConfig::threads`](engine::SimConfig): contiguous node-aligned
//!   rank partitions on host threads, null-message-style synchronization
//!   with LogGP lookahead, and a deterministic merge keeping results
//!   bit-identical to the sequential engine,
//! * [`faults`] — seeded, deterministic fault injection (OS noise,
//!   stragglers, flaky links, power-cap throttling, rank crashes) woven
//!   through the engine with a zero-cost off path,
//! * [`trace`] — per-rank timelines (the ITAC analog) with breakdowns and
//!   an ASCII timeline renderer used for the paper's Fig. 2 insets,
//! * [`profile`] — an *online* observability profile (per-rank phase split,
//!   protocol/size histograms, rank×rank communication matrix) computed
//!   incrementally by the engine even with `trace: false`,
//! * [`comm`] / [`threadcomm`] — a real, in-process message-passing layer
//!   with the same interface, used to execute the mini-kernels natively on
//!   host threads (data actually moves; collectives actually reduce).
//!
//! ## Example: the rendezvous ripple
//!
//! ```
//! use spechpc_simmpi::program::{Op, Program};
//! use spechpc_simmpi::engine::{Engine, SimConfig};
//! use spechpc_simmpi::netmodel::NetModel;
//! use spechpc_machine::presets;
//!
//! // A 4-rank chain: everyone sends 1 MiB up first, then receives —
//! // the minisweep pattern. Rendezvous semantics serialize it.
//! let n = 4;
//! let progs: Vec<Program> = (0..n).map(|r| {
//!     let mut p = Program::new();
//!     if r + 1 < n { p.push(Op::send(r + 1, 0, 1 << 20)); }
//!     if r > 0 { p.push(Op::recv(r - 1, 0)); }
//!     p
//! }).collect();
//! let cluster = presets::cluster_a();
//! let net = NetModel::compact(&cluster, n);
//! let result = Engine::new(SimConfig::default(), net, progs).run().unwrap();
//! // Rank n-1 finishes last; the makespan grows with the chain length.
//! assert!(result.makespan > 0.0);
//! ```

pub mod comm;
pub mod engine;
pub mod export;
pub mod faults;
pub mod netmodel;
pub mod pdes;
pub mod profile;
pub mod program;
pub mod threadcomm;
pub mod trace;

pub use comm::Comm;
pub use engine::{Engine, Prepass, SimConfig, SimError, SimResult};
pub use netmodel::NetModel;
pub use profile::{Phase, Profile, RankPhases, Regime, SizeBucket};
pub use program::{Op, Program, ReqId, Tag};
pub use trace::{EventKind, Timeline, TraceEvent};
