//! # spechpc-analysis — performance metrics and classification
//!
//! The paper's analytical toolbox: "demonstrating the value of
//! fundamental resource metrics like data volume and bandwidths"
//! (Contributions, §1). This crate implements those metrics on top of
//! simulation output:
//!
//! * [`roofline`] — Roofline model (§4.1.2's "Roofline-like view"),
//! * [`stats`] — min/max/average statistics over repeated runs (§3:
//!   "we repeated code executions several times and only statistically
//!   significant deviations were reported"),
//! * [`speedup`] — speedup and parallel-efficiency curves, saturation
//!   and superlinearity detection (§4.1.1),
//! * [`counters`] — LIKWID-style counter groups (MEM_DP, L3, L2):
//!   data volumes, bandwidths, DP vs. DP-AVX flops (§4.1.3–4.1.4),
//! * [`perfctr`] — `likwid-perfctr`-style group-report rendering,
//! * [`scaling`] — the multi-node scaling-case classifier of §5.1
//!   (cases A–D from cache effects × communication overhead).

pub mod counters;
pub mod perfctr;
pub mod roofline;
pub mod scaling;
pub mod speedup;
pub mod stats;

pub use counters::{CounterGroup, CounterSample};
pub use roofline::Roofline;
pub use scaling::{classify_scaling, ScalingCase, ScalingEvidence};
pub use speedup::{parallel_efficiency, speedup_curve, SpeedupCurve};
pub use stats::RunStats;
