//! The multi-node scaling-case classifier of paper §5.1.
//!
//! "Two antagonistic effects determine the scaling behavior:
//! communication overhead and memory data volume." The four cases:
//!
//! | Case | Scalability     | Cache effect | Communication overhead |
//! |------|-----------------|--------------|------------------------|
//! | A    | super-linear    | strong       | low                    |
//! | B    | linear          | present      | present (they balance) |
//! | C    | close-to-linear | present      | dominating             |
//! | D    | close-to-linear | none         | present                |
//! | Poor | poor            | any          | high + small data set  |

use crate::speedup::SpeedupCurve;

/// The §5.1 scaling cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingCase {
    /// Cache effect prevails over communication overhead.
    A,
    /// Communication overhead and cache effects balance out.
    B,
    /// Communication overhead dominates over the cache effect.
    C,
    /// No cache effect; only communication overhead.
    D,
    /// Poor scaling: heavy communication on a small data set.
    Poor,
}

impl std::fmt::Display for ScalingCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ScalingCase::A => "A (super-linear: cache effect prevails)",
            ScalingCase::B => "B (linear: cache effect balances communication)",
            ScalingCase::C => "C (close-to-linear: communication dominates cache gain)",
            ScalingCase::D => "D (close-to-linear: communication only, no cache effect)",
            ScalingCase::Poor => "poor (communication overhead + small data set)",
        };
        f.write_str(s)
    }
}

/// The evidence the classifier weighs, all over the same node sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingEvidence {
    /// Runtime per node count.
    pub curve: SpeedupCurve,
    /// Aggregate memory data volume per run (bytes) per node count —
    /// a *declining* volume indicates cache effects (Fig. 5 c, f).
    pub mem_volume: Vec<(usize, f64)>,
    /// MPI fraction of the runtime at the largest node count.
    pub comm_fraction: f64,
}

impl ScalingEvidence {
    /// Relative drop of the memory volume from the first to the last
    /// point (positive = volume shrinks = cache effect).
    pub fn cache_gain(&self) -> f64 {
        let (Some(first), Some(last)) = (self.mem_volume.first(), self.mem_volume.last()) else {
            return 0.0;
        };
        if first.1 <= 0.0 {
            return 0.0;
        }
        ((first.1 - last.1) / first.1).max(-10.0)
    }

    /// Parallel efficiency between the first and last node counts.
    pub fn efficiency(&self) -> f64 {
        let (r0, t0) = *self.curve.points.first().expect("non-empty curve");
        let (r1, t1) = *self.curve.points.last().expect("non-empty curve");
        (t0 / t1) / (r1 as f64 / r0 as f64)
    }
}

/// Classify a multi-node sweep.
pub fn classify_scaling(e: &ScalingEvidence) -> ScalingCase {
    let eff = e.efficiency();
    let cache = e.cache_gain();
    let has_cache_effect = cache > 0.03;
    let heavy_comm = e.comm_fraction > 0.10;
    if eff < 0.55 {
        return ScalingCase::Poor;
    }
    if eff > 1.06 && has_cache_effect {
        return ScalingCase::A;
    }
    if has_cache_effect && heavy_comm && eff >= 0.9 {
        return ScalingCase::B;
    }
    if has_cache_effect {
        // Cache gain there, but the expected superlinear speedup was
        // eaten by communication (or other overheads).
        return ScalingCase::C;
    }
    ScalingCase::D
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evidence(eff_per_double: f64, volume_drop: f64, comm: f64) -> ScalingEvidence {
        // Build a 1..16-node sweep with constant per-doubling efficiency.
        let mut points = Vec::new();
        let mut volumes = Vec::new();
        let mut t = 100.0;
        let mut v = 1e12;
        let mut n = 1;
        for step in 0..5 {
            points.push((n, t));
            volumes.push((n, v));
            if step < 4 {
                t /= 2.0 * eff_per_double;
                v *= 1.0 - volume_drop;
                n *= 2;
            }
        }
        ScalingEvidence {
            curve: SpeedupCurve::new(points),
            mem_volume: volumes,
            comm_fraction: comm,
        }
    }

    #[test]
    fn case_a_superlinear() {
        // weather on ClusterB: strong volume drop, little comm.
        let e = evidence(1.15, 0.35, 0.05);
        assert_eq!(classify_scaling(&e), ScalingCase::A);
        assert!(e.cache_gain() > 0.5);
    }

    #[test]
    fn case_b_balanced() {
        // tealeaf: cache gain + comm cancel to linear.
        let e = evidence(1.0, 0.2, 0.3);
        assert_eq!(classify_scaling(&e), ScalingCase::B);
    }

    #[test]
    fn case_c_comm_dominates_cache() {
        // hpgmgfv: volume drops but efficiency below linear.
        let e = evidence(0.92, 0.2, 0.4);
        assert_eq!(classify_scaling(&e), ScalingCase::C);
    }

    #[test]
    fn case_d_no_cache_effect() {
        // cloverleaf: flat volume, moderate comm.
        let e = evidence(0.93, 0.0, 0.2);
        assert_eq!(classify_scaling(&e), ScalingCase::D);
    }

    #[test]
    fn poor_scaling_detected() {
        // soma / minisweep / sph-exa: efficiency collapses.
        let e = evidence(0.6, 0.0, 0.7);
        assert!(e.efficiency() < 0.55);
        assert_eq!(classify_scaling(&e), ScalingCase::Poor);
    }

    #[test]
    fn display_strings() {
        assert!(ScalingCase::A.to_string().contains("super-linear"));
        assert!(ScalingCase::Poor.to_string().contains("small data set"));
    }
}
