//! The Roofline model (paper §4.1.2 adopts "a Roofline-like view of
//! hardware-software interaction").

use spechpc_machine::node::NodeSpec;

/// Roofline of one node (or a subset of it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak double-precision performance in Gflop/s.
    pub peak_gflops: f64,
    /// Saturated memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
}

impl Roofline {
    /// Roofline of a full node.
    pub fn of_node(node: &NodeSpec) -> Self {
        Roofline {
            peak_gflops: node.peak_flops(),
            mem_bandwidth_gbps: node.saturated_mem_bandwidth(),
        }
    }

    /// Roofline of one ccNUMA domain.
    pub fn of_domain(node: &NodeSpec) -> Self {
        Roofline {
            peak_gflops: node.peak_flops() / node.numa_domains() as f64,
            mem_bandwidth_gbps: node.domain_memory.saturation.plateau,
        }
    }

    /// The machine balance in flops/byte at which the two roofs meet.
    pub fn knee_intensity(&self) -> f64 {
        self.peak_gflops / self.mem_bandwidth_gbps
    }

    /// Attainable performance in Gflop/s at a given arithmetic
    /// intensity (flops per byte of memory traffic).
    pub fn attainable(&self, intensity: f64) -> f64 {
        (intensity * self.mem_bandwidth_gbps).min(self.peak_gflops)
    }

    /// Whether a code of this intensity is memory-bound on this roof.
    pub fn is_memory_bound(&self, intensity: f64) -> bool {
        intensity < self.knee_intensity()
    }

    /// Fraction of the relevant roof that a measured performance
    /// achieves.
    pub fn roof_fraction(&self, intensity: f64, measured_gflops: f64) -> f64 {
        measured_gflops / self.attainable(intensity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;

    #[test]
    fn node_rooflines_match_table_3() {
        let a = Roofline::of_node(&presets::cluster_a().node);
        assert!((a.peak_gflops - 5529.6).abs() < 1.0);
        assert!((a.mem_bandwidth_gbps - 306.0).abs() < 2.0);
        // Knee at ~18 flops/byte.
        assert!((a.knee_intensity() - 18.1).abs() < 0.5);
    }

    #[test]
    fn attainable_clamps_to_peak() {
        let r = Roofline {
            peak_gflops: 1000.0,
            mem_bandwidth_gbps: 100.0,
        };
        assert_eq!(r.attainable(5.0), 500.0);
        assert_eq!(r.attainable(50.0), 1000.0);
        assert!(r.is_memory_bound(5.0));
        assert!(!r.is_memory_bound(50.0));
    }

    #[test]
    fn suite_split_memory_vs_compute_bound() {
        // The paper's memory-bound set {tealeaf, cloverleaf, pot3d,
        // hpgmgfv} has intensities ≲ 0.5; the non-memory-bound set
        // {lbm, soma, minisweep, sph-exa} ≫ 1. All fall on the correct
        // side of the ClusterA knee (≈18 F/B is far above all of them,
        // so the discriminator is the per-core scalar roof — here we
        // just check ordering against the domain roof).
        let dom = Roofline::of_domain(&presets::cluster_a().node);
        assert!(dom.is_memory_bound(0.2)); // tealeaf-like
        assert!(dom.is_memory_bound(7.4)); // even lbm is below the SIMD knee…
                                           // …but the relevant comparison for lbm is its achievable
                                           // in-core rate, which the node model handles; the roofline
                                           // still bounds it correctly:
        assert!(dom.attainable(7.4) < dom.peak_gflops);
    }

    #[test]
    fn cluster_b_has_lower_knee() {
        // Higher machine balance ⇒ lower knee intensity (§5.1.3).
        let a = Roofline::of_node(&presets::cluster_a().node);
        let b = Roofline::of_node(&presets::cluster_b().node);
        assert!(b.knee_intensity() < a.knee_intensity());
    }

    #[test]
    fn roof_fraction_sane() {
        let r = Roofline {
            peak_gflops: 1000.0,
            mem_bandwidth_gbps: 100.0,
        };
        assert!((r.roof_fraction(5.0, 250.0) - 0.5).abs() < 1e-12);
    }
}
