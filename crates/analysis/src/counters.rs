//! LIKWID-style hardware-counter groups.
//!
//! The study reads `likwid-perfctr -g MEM_DP / L3 / L2` (Table 3) to
//! obtain flop counts (scalar vs. AVX-512), memory / L3 / L2 data
//! volumes, and derives bandwidths as volume over wall-clock time
//! (§3: "Memory bandwidths were determined using the ratio of memory
//! data volume to wall-clock time").

/// Which counter group a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterGroup {
    /// Memory traffic + DP flop counters.
    MemDp,
    /// L3 traffic.
    L3,
    /// L2 traffic.
    L2,
}

/// One full counter measurement of a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CounterSample {
    /// Wall-clock time of the measured region, s.
    pub runtime_s: f64,
    /// Total DP flops executed (scalar + SIMD).
    pub dp_flops: f64,
    /// DP flops executed with AVX-512 SIMD instructions.
    pub dp_avx_flops: f64,
    /// Main-memory data volume, bytes.
    pub mem_bytes: f64,
    /// L3 data volume, bytes.
    pub l3_bytes: f64,
    /// L2 data volume, bytes.
    pub l2_bytes: f64,
}

impl CounterSample {
    /// DP performance in Gflop/s (the paper's Fig. 1 "DP" series).
    pub fn dp_gflops(&self) -> f64 {
        self.dp_flops / self.runtime_s / 1e9
    }

    /// Vectorized-only performance in Gflop/s (Fig. 1 "DP-AVX").
    pub fn dp_avx_gflops(&self) -> f64 {
        self.dp_avx_flops / self.runtime_s / 1e9
    }

    /// Vectorization ratio: fraction of numerical work done with SIMD
    /// instructions (§4.1.3). "A well-vectorized code has a small
    /// difference between DP and DP-AVX."
    pub fn vectorization_ratio(&self) -> f64 {
        if self.dp_flops <= 0.0 {
            return 0.0;
        }
        self.dp_avx_flops / self.dp_flops
    }

    /// Memory bandwidth in GB/s.
    pub fn mem_bandwidth(&self) -> f64 {
        self.mem_bytes / self.runtime_s / 1e9
    }

    /// L3 bandwidth in GB/s.
    pub fn l3_bandwidth(&self) -> f64 {
        self.l3_bytes / self.runtime_s / 1e9
    }

    /// L2 bandwidth in GB/s.
    pub fn l2_bandwidth(&self) -> f64 {
        self.l2_bytes / self.runtime_s / 1e9
    }

    /// Arithmetic intensity against memory, flops/byte.
    pub fn intensity(&self) -> f64 {
        if self.mem_bytes <= 0.0 {
            return f64::INFINITY;
        }
        self.dp_flops / self.mem_bytes
    }

    /// Victim-L3 indicator (§4.1.4): on Ice Lake / Sapphire Rapids the
    /// L3 sees traffic coming down from L2, so `L3 volume > memory
    /// volume` (and for pot3d even `L3 bandwidth > L2 bandwidth`).
    pub fn shows_victim_l3(&self) -> bool {
        self.l3_bytes > self.mem_bytes
    }

    /// Scale all volumes and flops by a factor (e.g. steps).
    pub fn scaled(&self, factor: f64) -> CounterSample {
        CounterSample {
            runtime_s: self.runtime_s * factor,
            dp_flops: self.dp_flops * factor,
            dp_avx_flops: self.dp_avx_flops * factor,
            mem_bytes: self.mem_bytes * factor,
            l3_bytes: self.l3_bytes * factor,
            l2_bytes: self.l2_bytes * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CounterSample {
        CounterSample {
            runtime_s: 2.0,
            dp_flops: 2e12,
            dp_avx_flops: 1.9e12,
            mem_bytes: 4e11,
            l3_bytes: 6e11,
            l2_bytes: 8e11,
        }
    }

    #[test]
    fn derived_rates() {
        let s = sample();
        assert!((s.dp_gflops() - 1000.0).abs() < 1e-9);
        assert!((s.dp_avx_gflops() - 950.0).abs() < 1e-9);
        assert!((s.vectorization_ratio() - 0.95).abs() < 1e-12);
        assert!((s.mem_bandwidth() - 200.0).abs() < 1e-9);
        assert!((s.l3_bandwidth() - 300.0).abs() < 1e-9);
        assert!((s.l2_bandwidth() - 400.0).abs() < 1e-9);
        assert!((s.intensity() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn victim_l3_detected() {
        let s = sample();
        assert!(s.shows_victim_l3());
        let mut s2 = s;
        s2.l3_bytes = 3e11;
        assert!(!s2.shows_victim_l3());
    }

    #[test]
    fn scaling_preserves_rates() {
        let s = sample();
        let s10 = s.scaled(10.0);
        assert!((s10.mem_bandwidth() - s.mem_bandwidth()).abs() < 1e-9);
        assert!((s10.vectorization_ratio() - s.vectorization_ratio()).abs() < 1e-12);
        assert!((s10.mem_bytes - 4e12).abs() < 1.0);
    }

    #[test]
    fn degenerate_samples() {
        let z = CounterSample {
            runtime_s: 1.0,
            ..Default::default()
        };
        assert_eq!(z.vectorization_ratio(), 0.0);
        assert!(z.intensity().is_infinite());
    }
}
