//! `likwid-perfctr`-style report rendering for counter samples.
//!
//! The study reads the MEM_DP, L3 and L2 counter groups (Table 3:
//! `likwid-perfctr -g MEM_DP/L3/L2`). This module renders a
//! [`CounterSample`] in the familiar group-report layout so framework
//! output can be eyeballed against real LIKWID output.

use crate::counters::{CounterGroup, CounterSample};

/// Render one counter group of a sample as a likwid-style metric table.
pub fn render_group(group: CounterGroup, sample: &CounterSample, region: &str) -> String {
    let mut rows: Vec<(String, String)> = vec![(
        "Runtime (RDTSC) [s]".to_string(),
        format!("{:.4}", sample.runtime_s),
    )];
    match group {
        CounterGroup::MemDp => {
            rows.push((
                "DP [MFLOP/s]".into(),
                format!("{:.2}", sample.dp_gflops() * 1e3),
            ));
            rows.push((
                "AVX DP [MFLOP/s]".into(),
                format!("{:.2}", sample.dp_avx_gflops() * 1e3),
            ));
            rows.push((
                "Vectorization ratio [%]".into(),
                format!("{:.1}", sample.vectorization_ratio() * 100.0),
            ));
            rows.push((
                "Memory data volume [GBytes]".into(),
                format!("{:.2}", sample.mem_bytes / 1e9),
            ));
            rows.push((
                "Memory bandwidth [MBytes/s]".into(),
                format!("{:.2}", sample.mem_bandwidth() * 1e3),
            ));
            rows.push((
                "Operational intensity [FLOP/Byte]".into(),
                format!("{:.4}", sample.intensity()),
            ));
        }
        CounterGroup::L3 => {
            rows.push((
                "L3 data volume [GBytes]".into(),
                format!("{:.2}", sample.l3_bytes / 1e9),
            ));
            rows.push((
                "L3 bandwidth [MBytes/s]".into(),
                format!("{:.2}", sample.l3_bandwidth() * 1e3),
            ));
        }
        CounterGroup::L2 => {
            rows.push((
                "L2 data volume [GBytes]".into(),
                format!("{:.2}", sample.l2_bytes / 1e9),
            ));
            rows.push((
                "L2 bandwidth [MBytes/s]".into(),
                format!("{:.2}", sample.l2_bandwidth() * 1e3),
            ));
        }
    }

    let group_name = match group {
        CounterGroup::MemDp => "MEM_DP",
        CounterGroup::L3 => "L3",
        CounterGroup::L2 => "L2",
    };
    let width = rows
        .iter()
        .map(|(k, _)| k.chars().count())
        .max()
        .unwrap_or(0)
        .max(12);
    let vwidth = rows
        .iter()
        .map(|(_, v)| v.chars().count())
        .max()
        .unwrap_or(0)
        .max(8);
    let bar = format!("+{}+{}+", "-".repeat(width + 2), "-".repeat(vwidth + 2));
    let mut out = String::new();
    out.push_str(&format!("Region {region}, Group 1: {group_name}\n"));
    out.push_str(&bar);
    out.push('\n');
    out.push_str(&format!(
        "| {:<width$} | {:>vwidth$} |\n",
        "Metric", "Value"
    ));
    out.push_str(&bar);
    out.push('\n');
    for (k, v) in rows {
        out.push_str(&format!("| {k:<width$} | {v:>vwidth$} |\n"));
    }
    out.push_str(&bar);
    out.push('\n');
    out
}

/// Render all three groups of the study.
pub fn render_all(sample: &CounterSample, region: &str) -> String {
    [CounterGroup::MemDp, CounterGroup::L3, CounterGroup::L2]
        .iter()
        .map(|&g| render_group(g, sample, region))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CounterSample {
        CounterSample {
            runtime_s: 10.0,
            dp_flops: 5e12,
            dp_avx_flops: 4.75e12,
            mem_bytes: 2e12,
            l3_bytes: 3e12,
            l2_bytes: 4e12,
        }
    }

    #[test]
    fn mem_dp_group_reports_the_headline_metrics() {
        let s = render_group(CounterGroup::MemDp, &sample(), "tiny");
        assert!(s.contains("MEM_DP"));
        assert!(s.contains("Vectorization ratio [%]"));
        assert!(s.contains("95.0"), "ratio missing: {s}");
        assert!(s.contains("Memory bandwidth"));
        // 2e12 B / 10 s = 200 GB/s = 200000 MB/s.
        assert!(s.contains("200000.00"), "bandwidth missing: {s}");
    }

    #[test]
    fn all_groups_render_and_are_aligned() {
        let s = render_all(&sample(), "solver");
        assert!(s.contains("Group 1: MEM_DP"));
        assert!(s.contains("Group 1: L3"));
        assert!(s.contains("Group 1: L2"));
        // All table lines of a block share the same width.
        for block in s.split("\n\n") {
            let widths: Vec<usize> = block
                .lines()
                .filter(|l| l.starts_with('|') || l.starts_with('+'))
                .map(|l| l.chars().count())
                .collect();
            assert!(
                widths.windows(2).all(|w| w[0] == w[1]),
                "misaligned:\n{block}"
            );
        }
    }
}
