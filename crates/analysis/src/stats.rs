//! Run statistics: min / max / average over repetitions.
//!
//! Paper §3: "To account for variations in runtime, we repeated code
//! executions several times and only statistically significant
//! deviations were reported." Figures 1(a, d) and 5(a, d) plot speedups
//! "with min, max and average statistics".

/// Summary statistics of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    /// Sample standard deviation (0 for a single sample).
    pub stddev: f64,
    pub samples: usize,
}

impl RunStats {
    /// Summarize a non-empty set of measurements.
    pub fn from_samples(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "statistics need at least one sample");
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let stddev = if xs.len() > 1 {
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        RunStats {
            min,
            max,
            mean,
            stddev,
            samples: xs.len(),
        }
    }

    /// Relative spread `(max − min) / mean`.
    pub fn relative_spread(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        (self.max - self.min) / self.mean
    }

    /// Whether a deviation from another stats set is *statistically
    /// significant*: the means differ by more than `k` Welch standard
    /// errors, `SE = sqrt(s1²/n1 + s2²/n2)` (the paper reports only
    /// significant deviations). Unlike pooling the raw standard
    /// deviations, the standard error shrinks with the sample counts,
    /// so more repetitions tighten the test.
    pub fn significantly_differs(&self, other: &RunStats, k: f64) -> bool {
        let se = (self.stddev.powi(2) / self.samples as f64
            + other.stddev.powi(2) / other.samples as f64)
            .sqrt();
        if se == 0.0 {
            return self.mean != other.mean;
        }
        (self.mean - other.mean).abs() > k * se
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = RunStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        assert_eq!(s.samples, 3);
        assert!((s.relative_spread() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = RunStats::from_samples(&[5.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.relative_spread(), 0.0);
    }

    #[test]
    fn significance_respects_noise() {
        let quiet_a = RunStats::from_samples(&[10.0, 10.1, 9.9]);
        let quiet_b = RunStats::from_samples(&[12.0, 12.1, 11.9]);
        assert!(quiet_a.significantly_differs(&quiet_b, 3.0));
        let noisy_a = RunStats::from_samples(&[10.0, 14.0, 6.0]);
        let noisy_b = RunStats::from_samples(&[12.0, 16.0, 8.0]);
        assert!(!noisy_a.significantly_differs(&noisy_b, 3.0));
    }

    #[test]
    fn significance_tightens_with_more_samples() {
        // Same per-sample noise and the same 2.0 mean gap: with 3
        // repetitions the gap drowns in the standard error, with 12 it
        // does not. The old pooled-stddev formula ignored `samples` and
        // returned the same verdict for both.
        let few_a = RunStats::from_samples(&[10.0, 11.0, 9.0]);
        let few_b = RunStats::from_samples(&[12.0, 13.0, 11.0]);
        assert!(!few_a.significantly_differs(&few_b, 3.0));

        let many: Vec<f64> = [10.0, 11.0, 9.0].repeat(4);
        let many_shifted: Vec<f64> = many.iter().map(|x| x + 2.0).collect();
        let many_a = RunStats::from_samples(&many);
        let many_b = RunStats::from_samples(&many_shifted);
        assert!(many_a.significantly_differs(&many_b, 3.0));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        RunStats::from_samples(&[]);
    }
}
