//! Speedup and parallel-efficiency analysis (paper §4.1.1).
//!
//! "A saturation pattern, i.e., the speedup approaching a limit across
//! the cores of a ccNUMA domain, is an indicator for memory-bound
//! behavior. Lacking other bottlenecks, the speedup *across* ccNUMA
//! domains should be ideal … unless cache effects allow for superlinear
//! scaling."

/// A strong-scaling curve: `(resources, runtime_s)` pairs, resources
/// ascending.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpeedupCurve {
    pub points: Vec<(usize, f64)>,
}

impl SpeedupCurve {
    pub fn new(points: Vec<(usize, f64)>) -> Self {
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "resources must be strictly ascending"
        );
        SpeedupCurve { points }
    }

    /// Runtime at a resource count, if measured.
    pub fn runtime(&self, resources: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(r, _)| *r == resources)
            .map(|(_, t)| *t)
    }

    /// Speedup relative to the curve's first point.
    pub fn speedup(&self, resources: usize) -> Option<f64> {
        let (r0, t0) = *self.points.first()?;
        let _ = r0;
        Some(t0 / self.runtime(resources)?)
    }

    /// Speedup of every point relative to the first.
    pub fn speedups(&self) -> Vec<(usize, f64)> {
        let t0 = self.points.first().map(|(_, t)| *t).unwrap_or(1.0);
        self.points.iter().map(|(r, t)| (*r, t0 / t)).collect()
    }

    /// Detect saturation within a window `[lo, hi]`: the speedup gained
    /// from the second half of the window is less than `frac` of ideal.
    pub fn saturates_within(&self, lo: usize, hi: usize, frac: f64) -> bool {
        let (Some(t_lo), Some(t_hi)) = (self.runtime(lo), self.runtime(hi)) else {
            return false;
        };
        let gained = t_lo / t_hi;
        let ideal = hi as f64 / lo as f64;
        gained < frac * ideal
    }
}

/// Parallel efficiency (in %) between a baseline resource count and a
/// larger one: `100 · (t_base / t_big) / (big / base)`. The paper's
/// §4.1.1 table uses one ccNUMA domain as the baseline and the full
/// node as the target.
pub fn parallel_efficiency(
    curve: &SpeedupCurve,
    base_resources: usize,
    big_resources: usize,
) -> Option<f64> {
    let t_base = curve.runtime(base_resources)?;
    let t_big = curve.runtime(big_resources)?;
    let ideal = big_resources as f64 / base_resources as f64;
    Some(100.0 * (t_base / t_big) / ideal)
}

/// Build a speedup curve from `(resources, runtime)` measurements.
pub fn speedup_curve(points: Vec<(usize, f64)>) -> SpeedupCurve {
    SpeedupCurve::new(points)
}

/// Classification of a node-level scaling pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeScalingPattern {
    /// Speedup saturates within the ccNUMA domain (memory-bound).
    Saturating,
    /// Near-ideal scaling throughout.
    Scalable,
    /// Large reproducible fluctuations (lbm, minisweep).
    Erratic,
    /// Better than ideal across domains (cache effects).
    Superlinear,
}

/// Classify a node-level curve given the machine's domain size.
pub fn classify_node_scaling(
    curve: &SpeedupCurve,
    domain_cores: usize,
    node_cores: usize,
) -> NodeScalingPattern {
    // Fluctuation: non-monotone runtime with spread > 15 %.
    let mut spread: f64 = 0.0;
    for w in curve.points.windows(3) {
        let (_, t0) = w[0];
        let (_, t1) = w[1];
        let (_, t2) = w[2];
        if t1 > t0 && t1 > t2 {
            spread = spread.max((t1 - t0.min(t2)) / t1);
        }
    }
    if spread > 0.15 {
        return NodeScalingPattern::Erratic;
    }
    if let Some(eff) = parallel_efficiency(curve, domain_cores, node_cores) {
        if eff > 110.0 {
            return NodeScalingPattern::Superlinear;
        }
    }
    if curve.saturates_within(1, domain_cores, 0.55) {
        return NodeScalingPattern::Saturating;
    }
    NodeScalingPattern::Scalable
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal(n: usize) -> SpeedupCurve {
        SpeedupCurve::new((1..=n).map(|r| (r, 100.0 / r as f64)).collect())
    }

    fn saturating(n: usize, s_max: f64) -> SpeedupCurve {
        SpeedupCurve::new(
            (1..=n)
                .map(|r| {
                    let s = s_max * (r as f64 / s_max).tanh();
                    (r, 100.0 / s)
                })
                .collect(),
        )
    }

    #[test]
    fn ideal_curve_is_100_percent_efficient() {
        let c = ideal(72);
        let eff = parallel_efficiency(&c, 18, 72).unwrap();
        assert!((eff - 100.0).abs() < 1e-9);
        assert!(!c.saturates_within(1, 18, 0.55));
    }

    #[test]
    fn saturating_curve_detected() {
        let c = saturating(18, 6.0);
        assert!(c.saturates_within(1, 18, 0.55));
        assert_eq!(
            classify_node_scaling(&c, 18, 18),
            NodeScalingPattern::Saturating
        );
    }

    #[test]
    fn superlinear_efficiency_above_100() {
        // Runtime drops faster than ideal beyond the domain.
        let mut pts: Vec<(usize, f64)> = (1..=18).map(|r| (r, 100.0 / r as f64)).collect();
        pts.push((72, 100.0 / (72.0 * 1.25))); // 125 % efficient
        let c = SpeedupCurve::new(pts);
        let eff = parallel_efficiency(&c, 18, 72).unwrap();
        assert!((eff - 125.0).abs() < 1e-9);
        assert_eq!(
            classify_node_scaling(&c, 18, 72),
            NodeScalingPattern::Superlinear
        );
    }

    #[test]
    fn erratic_curve_detected() {
        // lbm-style: big dips at specific counts.
        let pts: Vec<(usize, f64)> = (1..=30)
            .map(|r| {
                let mut t = 100.0 / r as f64;
                if r == 22 || r == 23 {
                    t *= 1.4;
                }
                (r, t)
            })
            .collect();
        let c = SpeedupCurve::new(pts);
        assert_eq!(
            classify_node_scaling(&c, 18, 30),
            NodeScalingPattern::Erratic
        );
    }

    #[test]
    fn speedups_relative_to_first_point() {
        let c = SpeedupCurve::new(vec![(2, 50.0), (4, 25.0), (8, 12.5)]);
        let s = c.speedups();
        assert_eq!(s, vec![(2, 1.0), (4, 2.0), (8, 4.0)]);
        assert_eq!(c.speedup(8), Some(4.0));
        assert_eq!(c.speedup(3), None);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unordered_points_rejected() {
        SpeedupCurve::new(vec![(4, 1.0), (2, 2.0)]);
    }
}
