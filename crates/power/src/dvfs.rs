//! Frequency-scaling (DVFS) energy analysis — the paper's future-work
//! direction ("we will more thoroughly investigate optimization
//! opportunities", §6), built on the same power model.
//!
//! The classic pre-2020 result is that memory-bound codes save energy
//! by clocking down (performance is bandwidth-limited anyway). On CPUs
//! whose *baseline* power dominates (§4.2.3), that saving shrinks the
//! same way the concurrency-throttling saving did: stretching the
//! runtime costs baseline energy that the dynamic-power reduction can
//! no longer buy back. This module quantifies the trade.

use spechpc_machine::cpu::CpuSpec;

/// DVFS dynamic-power exponent: `P_dyn ∝ (f/f₀)^α`. Near the base
/// operating point voltage scales mildly with frequency; α ≈ 1.8 is a
/// common fit for server parts.
pub const DVFS_EXPONENT: f64 = 1.8;

/// One point of a frequency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsPoint {
    pub clock_ghz: f64,
    pub runtime_s: f64,
    pub power_w: f64,
    pub energy_j: f64,
}

/// Result of the sweep analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsAnalysis {
    /// Energy-optimal clock in GHz.
    pub optimal_clock_ghz: f64,
    /// Relative energy saving at the optimal clock vs. the base clock.
    pub saving_vs_base: f64,
    /// Runtime stretch at the optimal clock (t_opt / t_base).
    pub slowdown_at_optimum: f64,
}

/// Package power of a socket running at `clock_ghz`: the baseline
/// (uncore, fabric) is frequency-independent, the per-core dynamic part
/// scales with `(f/f₀)^α`.
pub fn package_power_at(
    cpu: &CpuSpec,
    active: usize,
    heat: f64,
    utilization: f64,
    clock_ghz: f64,
) -> f64 {
    let base_dynamic = cpu.package_power(active, heat, utilization) - cpu.baseline_power_w;
    let scale = (clock_ghz / cpu.base_clock_ghz).powf(DVFS_EXPONENT);
    cpu.baseline_power_w + base_dynamic * scale
}

/// Runtime of a code at `clock_ghz` under the Roofline split: the
/// in-core share `t_flops_base` stretches inversely with the clock, the
/// memory share `t_mem` does not.
pub fn runtime_at(t_flops_base: f64, t_mem: f64, base_clock: f64, clock_ghz: f64) -> f64 {
    let t_flops = t_flops_base * base_clock / clock_ghz;
    t_flops.max(t_mem) + 0.5 * t_flops.min(t_mem)
}

/// Runtime stretch imposed by capping the core clock at `cap_ghz`,
/// for a code whose in-core (frequency-sensitive) share of the
/// base-clock Roofline profile is `flops_fraction` ∈ [0, 1].
///
/// This is the [`runtime_at`] model solved as a ratio: memory-bound
/// codes (`flops_fraction → 0`) barely notice the cap, compute-bound
/// codes (`flops_fraction → 1`) stretch by the full clock ratio
/// `f₀ / f_cap`. The fault-injection layer uses this to translate a
/// thermal/power-cap event given as a frequency into the `slowdown`
/// factor its throttle window applies.
pub fn throttle_slowdown(base_clock_ghz: f64, cap_ghz: f64, flops_fraction: f64) -> f64 {
    assert!(
        base_clock_ghz > 0.0 && cap_ghz > 0.0,
        "clocks must be positive"
    );
    let phi = flops_fraction.clamp(0.0, 1.0);
    let cap = cap_ghz.min(base_clock_ghz);
    let base = runtime_at(phi, 1.0 - phi, base_clock_ghz, base_clock_ghz);
    runtime_at(phi, 1.0 - phi, base_clock_ghz, cap) / base
}

/// Sweep the clock over `[f_min, f_base]` in `steps` points for a
/// socket-filling job with in-core time `t_flops_base`, memory time
/// `t_mem` (both at base clock) and the given heat.
pub fn frequency_sweep(
    cpu: &CpuSpec,
    heat: f64,
    t_flops_base: f64,
    t_mem: f64,
    f_min_ghz: f64,
    steps: usize,
) -> Vec<DvfsPoint> {
    assert!(steps >= 2, "need at least two sweep points");
    assert!(f_min_ghz > 0.0 && f_min_ghz <= cpu.base_clock_ghz);
    let f0 = cpu.base_clock_ghz;
    (0..steps)
        .map(|i| {
            let f = f_min_ghz + (f0 - f_min_ghz) * i as f64 / (steps - 1) as f64;
            let t = runtime_at(t_flops_base, t_mem, f0, f);
            // Utilization at this clock: the in-core share of the step.
            let t_flops = t_flops_base * f0 / f;
            let util = (t - (t_mem - t_flops).max(0.0)) / t;
            let p = package_power_at(cpu, cpu.cores_per_socket, heat, util, f);
            DvfsPoint {
                clock_ghz: f,
                runtime_s: t,
                power_w: p,
                energy_j: p * t,
            }
        })
        .collect()
}

/// Find the energy-optimal clock of a sweep.
pub fn analyze(sweep: &[DvfsPoint]) -> Option<DvfsAnalysis> {
    let best = sweep
        .iter()
        .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))?;
    let base = sweep
        .iter()
        .max_by(|a, b| a.clock_ghz.total_cmp(&b.clock_ghz))?;
    Some(DvfsAnalysis {
        optimal_clock_ghz: best.clock_ghz,
        saving_vs_base: (base.energy_j - best.energy_j) / base.energy_j,
        slowdown_at_optimum: best.runtime_s / base.runtime_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;

    fn sweep(cpu: &CpuSpec, t_flops: f64, t_mem: f64) -> Vec<DvfsPoint> {
        frequency_sweep(cpu, 0.4, t_flops, t_mem, cpu.base_clock_ghz * 0.5, 16)
    }

    #[test]
    fn compute_bound_codes_stay_near_full_clock() {
        // With α > 1 even compute-bound codes have a formal energy
        // optimum slightly below nominal, but the saving is negligible
        // and the optimum sits within ~10 % of base clock.
        for node in [presets::cluster_a().node, presets::cluster_b().node] {
            let s = sweep(&node.cpu, 10.0, 0.5);
            let a = analyze(&s).unwrap();
            assert!(
                a.optimal_clock_ghz > 0.88 * node.cpu.base_clock_ghz,
                "{}: compute-bound optimum at {} GHz",
                node.cpu.model,
                a.optimal_clock_ghz
            );
            assert!(
                a.saving_vs_base < 0.02,
                "{}: compute-bound DVFS saving {}",
                node.cpu.model,
                a.saving_vs_base
            );
        }
    }

    #[test]
    fn memory_bound_downclocking_pays_little_on_modern_cpus() {
        // The §4.3 argument extended to DVFS: with ~40–50 % baseline
        // power, clocking a memory-bound code down saves far less than
        // it used to.
        let modern = presets::cluster_a().node.cpu;
        let legacy = presets::sandy_bridge_node().cpu;
        let a_modern = analyze(&sweep(&modern, 1.0, 8.0)).unwrap();
        let a_legacy = analyze(&sweep(&legacy, 1.0, 8.0)).unwrap();
        // Both favour < base clock for strongly memory-bound codes…
        assert!(a_modern.optimal_clock_ghz < modern.base_clock_ghz);
        assert!(a_legacy.optimal_clock_ghz < legacy.base_clock_ghz);
        // …but the legacy chip gains much more.
        assert!(
            a_legacy.saving_vs_base > 1.5 * a_modern.saving_vs_base,
            "modern {:.3} vs legacy {:.3}",
            a_modern.saving_vs_base,
            a_legacy.saving_vs_base
        );
    }

    #[test]
    fn runtime_model_is_monotone_in_clock() {
        let f0 = 2.4;
        let mut last = f64::INFINITY;
        for i in 1..=10 {
            let f = f0 * i as f64 / 10.0;
            let t = runtime_at(5.0, 3.0, f0, f);
            assert!(t <= last + 1e-12, "runtime must not grow with clock");
            last = t;
        }
    }

    #[test]
    fn power_scales_superlinearly_with_clock() {
        let cpu = presets::cluster_a().node.cpu;
        let p_half = package_power_at(&cpu, 36, 0.8, 1.0, 1.2);
        let p_full = package_power_at(&cpu, 36, 0.8, 1.0, 2.4);
        let dyn_half = p_half - cpu.baseline_power_w;
        let dyn_full = p_full - cpu.baseline_power_w;
        let ratio = dyn_full / dyn_half;
        assert!((ratio - 2f64.powf(DVFS_EXPONENT)).abs() < 1e-9);
    }

    #[test]
    fn throttle_slowdown_tracks_the_roofline_split() {
        // Pure compute stretches by the full clock ratio…
        assert!((throttle_slowdown(2.4, 1.2, 1.0) - 2.0).abs() < 1e-12);
        // …pure memory traffic does not notice the cap…
        assert!((throttle_slowdown(2.4, 1.2, 0.0) - 1.0).abs() < 1e-12);
        // …and mixed codes land strictly in between.
        let mixed = throttle_slowdown(2.4, 1.2, 0.5);
        assert!(mixed > 1.0 && mixed < 2.0, "mixed slowdown {mixed}");
    }

    #[test]
    fn throttle_slowdown_is_monotone_and_clamped() {
        let mut last = f64::INFINITY;
        for i in 1..=12 {
            let cap = 2.4 * i as f64 / 12.0;
            let s = throttle_slowdown(2.4, cap, 0.7);
            assert!(s <= last + 1e-12, "deeper caps must slow more");
            assert!(s >= 1.0);
            last = s;
        }
        // A cap at or above base clock is a no-op, never a speed-up.
        assert!((throttle_slowdown(2.4, 2.4, 0.7) - 1.0).abs() < 1e-12);
        assert!((throttle_slowdown(2.4, 3.0, 0.7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_bounds_respected() {
        let cpu = presets::cluster_b().node.cpu;
        let s = frequency_sweep(&cpu, 0.5, 2.0, 2.0, 1.0, 8);
        assert_eq!(s.len(), 8);
        assert!((s.first().unwrap().clock_ghz - 1.0).abs() < 1e-12);
        assert!((s.last().unwrap().clock_ghz - cpu.base_clock_ghz).abs() < 1e-12);
    }
}
