//! The Z-plot: energy vs. speedup with resources as the parameter.
//!
//! "In a Z-plot, horizontal lines mark constant energy, vertical lines
//! mark constant speedup, and lines through the origin mark constant
//! EDP (the slope being proportional to the EDP)" (paper §4.3, citing
//! Afzal's Z-plot representation). The paper uses it to show that on
//! modern Intel CPUs the minimum-energy and minimum-EDP operating
//! points nearly coincide (§4.3.1).

/// One operating point of a scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZPoint {
    /// Resources used (number of cores or nodes).
    pub resources: usize,
    /// Speedup relative to the sweep's baseline.
    pub speedup: f64,
    /// Energy to solution in J.
    pub energy_j: f64,
    /// Runtime in s.
    pub runtime_s: f64,
}

impl ZPoint {
    pub fn edp(&self) -> f64 {
        self.energy_j * self.runtime_s
    }
}

/// An identified optimal operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    pub resources: usize,
    pub value: f64,
}

/// A full Z-plot data set (one benchmark, one machine).
#[derive(Debug, Clone, Default)]
pub struct ZPlot {
    pub label: String,
    pub points: Vec<ZPoint>,
}

impl ZPlot {
    pub fn new(label: impl Into<String>) -> Self {
        ZPlot {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, p: ZPoint) {
        self.points.push(p);
    }

    /// The minimum-energy operating point.
    pub fn energy_minimum(&self) -> Option<OperatingPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
            .map(|p| OperatingPoint {
                resources: p.resources,
                value: p.energy_j,
            })
    }

    /// The minimum-EDP operating point.
    pub fn edp_minimum(&self) -> Option<OperatingPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.edp().total_cmp(&b.edp()))
            .map(|p| OperatingPoint {
                resources: p.resources,
                value: p.edp(),
            })
    }

    /// Distance (in resource steps of this sweep) between the E and EDP
    /// minima — the paper's §4.3.1 metric: "so close together as to be
    /// hardly discernible" on modern CPUs.
    pub fn min_separation_steps(&self) -> Option<usize> {
        let e = self.energy_minimum()?;
        let edp = self.edp_minimum()?;
        let idx_of = |r: usize| self.points.iter().position(|p| p.resources == r);
        Some(idx_of(e.resources)?.abs_diff(idx_of(edp.resources)?))
    }

    /// Energy saving of the energy-optimal concurrency relative to using
    /// all resources (the old "concurrency throttling" gain, §4.3.1).
    pub fn throttling_gain(&self) -> Option<f64> {
        let e_min = self.energy_minimum()?.value;
        let full = self.points.iter().max_by_key(|p| p.resources)?.energy_j;
        Some((full - e_min) / full)
    }

    /// Render the Z-plot as an ASCII scatter (speedup on x, energy on y).
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        if self.points.is_empty() || width == 0 || height == 0 {
            return String::new();
        }
        let smax = self.points.iter().map(|p| p.speedup).fold(0.0, f64::max);
        let emax = self.points.iter().map(|p| p.energy_j).fold(0.0, f64::max);
        let mut rows = vec![vec![' '; width + 1]; height + 1];
        for p in &self.points {
            let x = ((p.speedup / smax) * width as f64).round() as usize;
            let y = height - ((p.energy_j / emax) * height as f64).round() as usize;
            rows[y.min(height)][x.min(width)] = 'o';
        }
        let mut out = format!(
            "{} (x: speedup 0..{smax:.1}, y: energy 0..{emax:.0} J)\n",
            self.label
        );
        for row in rows {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(width + 1));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Modern-CPU-like sweep: energy keeps falling (or stays flat) as
    /// speedup rises, because baseline power dominates.
    fn modern_sweep() -> ZPlot {
        let mut z = ZPlot::new("modern");
        // E(n) = (P_base + n·p) · t₁/s(n); saturating speedup.
        let p_base = 200.0;
        let p_core = 4.0;
        let t1 = 100.0;
        for n in 1..=18usize {
            let s = (n as f64).min(8.0 + 0.2 * n as f64);
            let t = t1 / s;
            let e = (p_base + p_core * n as f64) * t;
            z.push(ZPoint {
                resources: n,
                speedup: s,
                energy_j: e,
                runtime_s: t,
            });
        }
        z
    }

    /// Old-CPU-like sweep: low baseline ⇒ energy minimum at partial
    /// concurrency.
    fn old_sweep() -> ZPlot {
        let mut z = ZPlot::new("sandy-bridge");
        let p_base = 20.0;
        let p_core = 11.0;
        let t1 = 100.0;
        for n in 1..=8usize {
            let s = (n as f64).min(4.0 + 0.1 * n as f64);
            let t = t1 / s;
            let e = (p_base + p_core * n as f64) * t;
            z.push(ZPoint {
                resources: n,
                speedup: s,
                energy_j: e,
                runtime_s: t,
            });
        }
        z
    }

    #[test]
    fn modern_minima_coincide() {
        let z = modern_sweep();
        assert!(
            z.min_separation_steps().unwrap() <= 1,
            "E and EDP minima must nearly coincide"
        );
    }

    #[test]
    fn old_cpu_rewards_concurrency_throttling() {
        let z = old_sweep();
        let e = z.energy_minimum().unwrap();
        // Energy minimum strictly inside the sweep (not at full
        // concurrency).
        assert!(e.resources < 8, "old CPUs had an interior E-minimum");
        assert!(z.throttling_gain().unwrap() > 0.05);
    }

    #[test]
    fn modern_cpu_throttling_gain_is_negligible() {
        let z = modern_sweep();
        assert!(
            z.throttling_gain().unwrap() < 0.05,
            "modern baseline power kills the throttling gain"
        );
    }

    #[test]
    fn edp_definition() {
        let p = ZPoint {
            resources: 1,
            speedup: 1.0,
            energy_j: 10.0,
            runtime_s: 3.0,
        };
        assert_eq!(p.edp(), 30.0);
    }

    #[test]
    fn empty_plot_has_no_minima() {
        let z = ZPlot::new("empty");
        assert!(z.energy_minimum().is_none());
        assert!(z.edp_minimum().is_none());
        assert!(z.min_separation_steps().is_none());
        assert_eq!(z.render_ascii(10, 5), "");
    }

    #[test]
    fn ascii_render_contains_points() {
        let z = modern_sweep();
        let s = z.render_ascii(40, 12);
        assert!(s.contains('o'));
        assert!(s.lines().count() >= 12);
    }
}
