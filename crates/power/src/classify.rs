//! Hot/cool benchmark classification (paper §4.2.1).
//!
//! "There are clearly 'hot' and 'cool' SPEChpc benchmarks with high and
//! low per-CPU power dissipation. The hot benchmarks come close to the
//! TDP of both systems."

use spechpc_machine::cpu::CpuSpec;

/// Power class of a code on a given CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeatClass {
    /// ≥ 95 % of socket TDP with all cores busy.
    Hot,
    /// 90–95 % of TDP.
    Warm,
    /// < 90 % of TDP.
    Cool,
}

/// Classify a code's full-socket power draw.
pub fn classify_heat(cpu: &CpuSpec, heat: f64) -> HeatClass {
    let frac = cpu.tdp_fraction_full(heat);
    if frac >= 0.95 {
        HeatClass::Hot
    } else if frac >= 0.90 {
        HeatClass::Warm
    } else {
        HeatClass::Cool
    }
}

/// Fraction of socket TDP a code reaches with all cores busy.
pub fn tdp_fraction(cpu: &CpuSpec, heat: f64) -> f64 {
    cpu.tdp_fraction_full(heat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;

    #[test]
    fn sph_exa_is_hot_on_both_cpus() {
        // §4.2.1: 98 % (A) and 95 % (B) of socket TDP.
        let a = presets::cluster_a().node.cpu;
        let b = presets::cluster_b().node.cpu;
        assert_eq!(classify_heat(&a, 1.0), HeatClass::Hot);
        assert_eq!(classify_heat(&b, 1.0), HeatClass::Hot);
    }

    #[test]
    fn soma_is_cool_on_both_cpus() {
        // §4.2.1: 89 % (A) and 85 % (B).
        let a = presets::cluster_a().node.cpu;
        let b = presets::cluster_b().node.cpu;
        assert_eq!(classify_heat(&a, 0.0), HeatClass::Cool);
        assert_eq!(classify_heat(&b, 0.0), HeatClass::Cool);
    }

    #[test]
    fn tdp_fractions_match_calibration() {
        let a = presets::cluster_a().node.cpu;
        assert!((tdp_fraction(&a, 1.0) - 0.976).abs() < 0.02);
        assert!((tdp_fraction(&a, 0.0) - 0.888).abs() < 0.02);
    }

    #[test]
    fn power_spread_across_the_suite_is_about_10_percent() {
        // §6: "a 25 % variation in power dissipation on the package
        // level across benchmarks" refers to dynamic power; the total
        // package spread between hottest and coolest is ~9–11 %.
        let a = presets::cluster_a().node.cpu;
        let spread = tdp_fraction(&a, 1.0) - tdp_fraction(&a, 0.0);
        assert!(spread > 0.05 && spread < 0.15, "spread {spread}");
    }
}
