//! # spechpc-power — RAPL-style power and energy models
//!
//! The paper's §4.2–4.3 and §5.2 derive power and energy conclusions
//! from RAPL package and DRAM measurements. This crate reproduces that
//! measurement layer on top of [`spechpc_machine`]'s calibrated power
//! constants:
//!
//! * [`rapl`] — package power (baseline + per-core dynamic power scaled
//!   by code "heat" and memory-stall utilization) and DRAM power (tied
//!   to bandwidth utilization), per socket / domain / node / job,
//! * [`energy`] — energy to solution and energy-delay product (EDP),
//! * [`zplot`] — the Z-plot representation (energy vs. speedup with the
//!   core count as the parameter, paper Fig. 4) and the E/EDP-minimum
//!   operating-point search,
//! * [`classify`] — hot/cool code classification (§4.2.1),
//! * [`race`] — race-to-idle vs. concurrency-throttling analysis
//!   (§4.3.1): on CPUs with high baseline power the E and EDP minima
//!   coincide and "making code faster" is the only energy lever left,
//! * [`dvfs`] — frequency-scaling energy analysis (the paper's §6
//!   future-work direction): the same baseline-power argument applies
//!   to down-clocking memory-bound codes.

pub mod classify;
pub mod dvfs;
pub mod energy;
pub mod race;
pub mod rapl;
pub mod zplot;

pub use classify::{classify_heat, HeatClass};
pub use energy::{edp, energy_to_solution, EnergyBreakdown};
pub use rapl::{JobPower, PowerState, RaplModel};
pub use zplot::{OperatingPoint, ZPlot, ZPoint};
