//! Energy to solution and energy-delay product.

use crate::rapl::JobPower;

/// Energy of one run, split by component (J).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    pub cpu_j: f64,
    pub dram_j: f64,
    /// Wall-clock runtime the energy was integrated over (s).
    pub runtime_s: f64,
}

impl EnergyBreakdown {
    pub fn total_j(&self) -> f64 {
        self.cpu_j + self.dram_j
    }

    /// Energy-delay product in J·s.
    pub fn edp(&self) -> f64 {
        self.total_j() * self.runtime_s
    }

    /// DRAM share of the total energy ("only a minor contributor",
    /// §4.3.2).
    pub fn dram_fraction(&self) -> f64 {
        if self.total_j() <= 0.0 {
            return 0.0;
        }
        self.dram_j / self.total_j()
    }
}

/// Integrate a constant power over a runtime.
pub fn energy_to_solution(power: JobPower, runtime_s: f64) -> EnergyBreakdown {
    assert!(runtime_s >= 0.0, "runtime must be non-negative");
    EnergyBreakdown {
        cpu_j: power.package_w * runtime_s,
        dram_j: power.dram_w * runtime_s,
        runtime_s,
    }
}

/// Energy-delay product for a given energy and runtime.
pub fn edp(energy_j: f64, runtime_s: f64) -> f64 {
    energy_j * runtime_s
}

/// Integrate a piecewise-constant power profile: `(power, seconds)`
/// segments (used when a run has phases with different utilization).
pub fn integrate_profile(segments: &[(JobPower, f64)]) -> EnergyBreakdown {
    let mut e = EnergyBreakdown::default();
    for (p, dt) in segments {
        assert!(*dt >= 0.0);
        e.cpu_j += p.package_w * dt;
        e.dram_j += p.dram_w * dt;
        e.runtime_s += dt;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power(pkg: f64, dram: f64) -> JobPower {
        JobPower {
            package_w: pkg,
            dram_w: dram,
        }
    }

    #[test]
    fn energy_is_power_times_time() {
        let e = energy_to_solution(power(200.0, 50.0), 10.0);
        assert_eq!(e.cpu_j, 2000.0);
        assert_eq!(e.dram_j, 500.0);
        assert_eq!(e.total_j(), 2500.0);
        assert_eq!(e.edp(), 25000.0);
    }

    #[test]
    fn dram_fraction_is_minor_for_typical_values() {
        // ~490 W package vs ~60 W DRAM on a ClusterA node.
        let e = energy_to_solution(power(490.0, 60.0), 100.0);
        assert!(e.dram_fraction() < 0.15);
    }

    #[test]
    fn profile_integration_matches_piecewise_sum() {
        let e = integrate_profile(&[(power(100.0, 10.0), 2.0), (power(300.0, 20.0), 1.0)]);
        assert_eq!(e.cpu_j, 500.0);
        assert_eq!(e.dram_j, 40.0);
        assert_eq!(e.runtime_s, 3.0);
    }

    #[test]
    fn zero_runtime_zero_energy() {
        let e = energy_to_solution(power(500.0, 50.0), 0.0);
        assert_eq!(e.total_j(), 0.0);
        assert_eq!(e.edp(), 0.0);
        assert_eq!(e.dram_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_runtime_rejected() {
        energy_to_solution(power(1.0, 1.0), -1.0);
    }
}
