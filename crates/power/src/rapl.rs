//! RAPL-style power accounting for a running job.
//!
//! The model follows the paper's "naive CPU and DRAM power model"
//! (§4.2): package power grows linearly with active cores until the
//! memory-bandwidth bottleneck is hit, after which additional cores
//! stall and contribute less; DRAM power tracks bandwidth utilization
//! and becomes constant at saturation. The calibrated constants live in
//! [`spechpc_machine::cpu::CpuSpec`] and
//! [`spechpc_machine::memory::MemorySpec`].

use spechpc_machine::affinity::Pinning;
use spechpc_machine::cluster::ClusterSpec;

/// Snapshot of one job's execution state, as the power model sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerState {
    /// Code heat in `[0, 1]` (0 = coolest code of the suite, soma;
    /// 1 = hottest, sph-exa).
    pub heat: f64,
    /// Mean core busy fraction (1 − memory-stall fraction) per rank.
    pub utilization: Vec<f64>,
    /// DRAM bandwidth utilization per `[node][domain]`, each in `[0,1]`.
    pub dram_utilization: Vec<Vec<f64>>,
}

/// Power of one job, split by component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JobPower {
    /// Total package power over all *allocated* sockets, W.
    pub package_w: f64,
    /// Total DRAM power over all allocated domains, W.
    pub dram_w: f64,
}

impl JobPower {
    pub fn total(&self) -> f64 {
        self.package_w + self.dram_w
    }
}

/// RAPL model bound to a cluster.
#[derive(Debug, Clone)]
pub struct RaplModel {
    cluster: ClusterSpec,
}

impl RaplModel {
    pub fn new(cluster: &ClusterSpec) -> Self {
        RaplModel {
            cluster: cluster.clone(),
        }
    }

    /// Power drawn by a pinned job in the given state. Allocated nodes
    /// are charged in full (both sockets' baselines and all domains'
    /// DRAM idle power): batch systems allocate whole nodes, which is
    /// exactly why the paper's baseline-power observations matter.
    pub fn job_power(&self, pinning: &Pinning, state: &PowerState) -> JobPower {
        assert_eq!(
            pinning.nprocs(),
            state.utilization.len(),
            "one utilization entry per rank required"
        );
        let node = &self.cluster.node;
        let cpu = &node.cpu;
        let nodes_used = pinning.nodes_used();
        let domains = node.numa_domains();
        let cores_per_socket = cpu.cores_per_socket;

        // Mean utilization of the active cores on each socket.
        let mut socket_active = vec![vec![0usize; node.sockets]; nodes_used];
        let mut socket_util = vec![vec![0.0f64; node.sockets]; nodes_used];
        for p in &pinning.placements {
            let socket = p.core / cores_per_socket;
            socket_active[p.node][socket] += 1;
            socket_util[p.node][socket] += state.utilization[p.rank];
        }

        let mut package_w = 0.0;
        for n in 0..nodes_used {
            for s in 0..node.sockets {
                let active = socket_active[n][s];
                let util = if active > 0 {
                    socket_util[n][s] / active as f64
                } else {
                    0.0
                };
                package_w += cpu.package_power(active, state.heat, util);
            }
        }

        let mut dram_w = 0.0;
        for n in 0..nodes_used {
            for d in 0..domains {
                let u = state
                    .dram_utilization
                    .get(n)
                    .and_then(|v| v.get(d))
                    .copied()
                    .unwrap_or(0.0);
                dram_w += node.domain_memory.dram_power(u);
            }
        }

        JobPower { package_w, dram_w }
    }

    /// The extrapolated zero-core package power of the allocated
    /// nodes — the paper's "baseline power" (§4.2.3).
    pub fn baseline_power(&self, nodes: usize) -> f64 {
        self.cluster.node.cpu.baseline_power_w * (self.cluster.node.sockets * nodes) as f64
    }

    /// TDP of the allocated nodes.
    pub fn tdp(&self, nodes: usize) -> f64 {
        self.cluster.node.tdp() * nodes as f64
    }

    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::affinity::{Pinning, PinningPolicy};
    use spechpc_machine::presets;

    fn state(nranks: usize, heat: f64, util: f64, dram: f64, nodes: usize) -> PowerState {
        PowerState {
            heat,
            utilization: vec![util; nranks],
            dram_utilization: vec![vec![dram; 8]; nodes],
        }
    }

    #[test]
    fn hot_full_node_approaches_tdp() {
        let cluster = presets::cluster_a();
        let model = RaplModel::new(&cluster);
        let pin = Pinning::new(&cluster, 72, PinningPolicy::Compact);
        let p = model.job_power(&pin, &state(72, 1.0, 1.0, 0.3, 1));
        // sph-exa: 244 W per socket (§4.2.1) ⇒ ~488 W per node.
        assert!(
            (p.package_w - 488.0).abs() < 10.0,
            "package power {}",
            p.package_w
        );
        assert!(p.package_w <= model.tdp(1));
    }

    #[test]
    fn cool_code_draws_less() {
        let cluster = presets::cluster_a();
        let model = RaplModel::new(&cluster);
        let pin = Pinning::new(&cluster, 72, PinningPolicy::Compact);
        let hot = model.job_power(&pin, &state(72, 1.0, 1.0, 0.2, 1));
        let cool = model.job_power(&pin, &state(72, 0.0, 1.0, 0.2, 1));
        // soma: 222 W per socket ⇒ ~444 W per node.
        assert!((cool.package_w - 444.0).abs() < 10.0, "{}", cool.package_w);
        assert!(cool.package_w < hot.package_w);
    }

    #[test]
    fn single_domain_job_still_pays_both_baselines() {
        let cluster = presets::cluster_a();
        let model = RaplModel::new(&cluster);
        let pin = Pinning::new(&cluster, 18, PinningPolicy::Compact);
        let p = model.job_power(&pin, &state(18, 0.5, 1.0, 0.0, 1));
        // Both sockets idle-baseline at minimum: ≥ 196 W.
        assert!(p.package_w > 2.0 * 98.0);
        // The idle socket contributes exactly its baseline.
        let one_socket_active =
            cluster.node.cpu.package_power(18, 0.5, 1.0) + cluster.node.cpu.baseline_power_w;
        assert!((p.package_w - one_socket_active).abs() < 1e-9);
    }

    #[test]
    fn dram_power_tracks_utilization() {
        let cluster = presets::cluster_a();
        let model = RaplModel::new(&cluster);
        let pin = Pinning::new(&cluster, 72, PinningPolicy::Compact);
        let idle = model.job_power(&pin, &state(72, 0.5, 0.5, 0.0, 1));
        let busy = model.job_power(&pin, &state(72, 0.5, 0.5, 1.0, 1));
        assert!(busy.dram_w > idle.dram_w);
        // Saturated DDR4: 16 W × 4 domains = 64 W per node (§4.2.1).
        assert!((busy.dram_w - 64.0).abs() < 1.0, "{}", busy.dram_w);
        // Idle floor: 9 W × 4 = 36 W.
        assert!((idle.dram_w - 36.0).abs() < 1.0, "{}", idle.dram_w);
    }

    #[test]
    fn ddr5_is_cooler_than_ddr4_at_same_utilization() {
        let a = presets::cluster_a();
        let b = presets::cluster_b();
        let pa = Pinning::new(&a, 72, PinningPolicy::Compact);
        let pb = Pinning::new(&b, 104, PinningPolicy::Compact);
        let da = RaplModel::new(&a).job_power(&pa, &state(72, 0.5, 0.5, 1.0, 1));
        let db = RaplModel::new(&b).job_power(&pb, &state(104, 0.5, 0.5, 1.0, 1));
        // ClusterB has twice the domains, yet its total DRAM power stays
        // comparable (§4.2.3: DDR5 with half-rate clocking).
        assert!(db.dram_w < 1.5 * da.dram_w);
    }

    #[test]
    fn multi_node_power_scales_with_allocated_nodes() {
        let cluster = presets::cluster_a();
        let model = RaplModel::new(&cluster);
        let p1 = {
            let pin = Pinning::new(&cluster, 72, PinningPolicy::Compact);
            model.job_power(&pin, &state(72, 0.5, 1.0, 0.5, 1)).total()
        };
        let p4 = {
            let pin = Pinning::new(&cluster, 288, PinningPolicy::Compact);
            model.job_power(&pin, &state(288, 0.5, 1.0, 0.5, 4)).total()
        };
        assert!((p4 / p1 - 4.0).abs() < 0.01, "ratio {}", p4 / p1);
    }

    #[test]
    fn stalled_cores_flatten_the_power_slope() {
        // Past bandwidth saturation the utilization drops; power keeps
        // growing but more slowly (§4.2).
        let cluster = presets::cluster_a();
        let model = RaplModel::new(&cluster);
        let pin18 = Pinning::new(&cluster, 18, PinningPolicy::Compact);
        let busy = model.job_power(&pin18, &state(18, 0.5, 1.0, 1.0, 1));
        let stalled = model.job_power(&pin18, &state(18, 0.5, 0.2, 1.0, 1));
        assert!(stalled.package_w < busy.package_w);
        assert!(stalled.package_w > model.baseline_power(1));
    }

    #[test]
    fn baseline_fractions_match_paper() {
        let a = RaplModel::new(&presets::cluster_a());
        let b = RaplModel::new(&presets::cluster_b());
        let fa = a.baseline_power(1) / a.tdp(1);
        let fb = b.baseline_power(1) / b.tdp(1);
        assert!((fa - 0.392).abs() < 0.02, "Ice Lake {fa}");
        assert!((fb - 0.509).abs() < 0.02, "Sapphire Rapids {fb}");
    }
}
