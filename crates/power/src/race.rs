//! Race-to-idle vs. concurrency throttling (paper §4.3.1).
//!
//! On earlier Intel architectures, reducing the number of active cores
//! ("concurrency throttling") minimized the energy of memory-bound
//! codes. On Ice Lake and Sapphire Rapids the baseline power dominates
//! so strongly that idling cores saves almost nothing — "making code
//! faster (code race-to-idle) is now the primary means of energy
//! reduction". This module quantifies that argument for any CPU model.

use spechpc_machine::cpu::CpuSpec;

use crate::zplot::{ZPlot, ZPoint};

/// Outcome of the strategy analysis for one CPU and one scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyAnalysis {
    /// Core count minimizing energy to solution.
    pub energy_optimal_cores: usize,
    /// Core count minimizing the EDP.
    pub edp_optimal_cores: usize,
    /// Relative energy saving of throttling vs. all cores.
    pub throttling_gain: f64,
    /// Whether race-to-idle (use all cores, run fast) is within 5 % of
    /// the optimum — the modern-CPU verdict.
    pub race_to_idle_is_optimal: bool,
}

/// Build the energy-vs-concurrency sweep over `1..=max_cores` cores of
/// one socket — the paper sweeps one ccNUMA domain (§4.3.1), since the
/// next domain brings fresh memory bandwidth and restarts the scaling.
/// `speedup(n)` gives the code's speedup over one core with `n` active
/// cores, `heat`/`utilization(n)` feed the package-power model, and
/// `t1_seconds` is the single-core runtime.
pub fn concurrency_sweep(
    cpu: &CpuSpec,
    max_cores: usize,
    heat: f64,
    t1_seconds: f64,
    speedup: impl Fn(usize) -> f64,
    utilization: impl Fn(usize) -> f64,
) -> ZPlot {
    let mut z = ZPlot::new(format!("{} concurrency sweep", cpu.model));
    for n in 1..=max_cores.min(cpu.cores_per_socket) {
        let s = speedup(n).max(1e-9);
        let t = t1_seconds / s;
        let p = cpu.package_power(n, heat, utilization(n));
        z.push(ZPoint {
            resources: n,
            speedup: s,
            energy_j: p * t,
            runtime_s: t,
        });
    }
    z
}

/// Analyze the sweep.
pub fn analyze(z: &ZPlot) -> Option<StrategyAnalysis> {
    let e = z.energy_minimum()?;
    let edp = z.edp_minimum()?;
    let gain = z.throttling_gain()?;
    let full = z.points.iter().max_by_key(|p| p.resources)?;
    let race_ok = (full.energy_j - e.value) / e.value <= 0.05;
    Some(StrategyAnalysis {
        energy_optimal_cores: e.resources,
        edp_optimal_cores: edp.resources,
        throttling_gain: gain,
        race_to_idle_is_optimal: race_ok,
    })
}

/// A saturating-speedup model typical for a memory-bound code on one
/// ccNUMA domain: `s(n) = s_max · tanh(k·n / s_max)`.
pub fn saturating_speedup(s_max: f64, k: f64) -> impl Fn(usize) -> f64 {
    move |n| s_max * (k * n as f64 / s_max).tanh()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spechpc_machine::presets;

    fn mem_bound_sweep(cpu: &CpuSpec, domain_cores: usize, s_max: f64) -> ZPlot {
        // Memory-bound: speedup saturates at s_max, utilization
        // collapses past the knee. Swept over one ccNUMA domain.
        let s = saturating_speedup(s_max, 1.0);
        concurrency_sweep(cpu, domain_cores, 0.4, 100.0, s, move |n| {
            (s_max / n as f64).min(1.0)
        })
    }

    #[test]
    fn modern_cpus_favor_race_to_idle() {
        for cluster in [presets::cluster_a(), presets::cluster_b()] {
            // DDR4/DDR5 domains saturate around 6 effective cores.
            let domain = cluster.node.cores_per_domain();
            let a = analyze(&mem_bound_sweep(&cluster.node.cpu, domain, 6.0)).unwrap();
            assert!(
                a.race_to_idle_is_optimal,
                "{}: race-to-idle must be (near-)optimal: {a:?}",
                cluster.name
            );
            assert!(
                a.throttling_gain < 0.08,
                "{}: throttling gain {} should be negligible",
                cluster.name,
                a.throttling_gain
            );
            // §4.3.1: E and EDP minima nearly coincide.
            let steps = a.energy_optimal_cores.abs_diff(a.edp_optimal_cores);
            assert!(steps <= 2, "minima separated by {steps} cores");
        }
    }

    #[test]
    fn sandy_bridge_rewarded_throttling() {
        let sb = presets::sandy_bridge_node();
        // DDR3 saturates around 3.5 effective cores of the 8-core chip
        // (one domain = the whole socket, SNC off).
        let a = analyze(&mem_bound_sweep(&sb.cpu, 8, 3.5)).unwrap();
        assert!(
            a.energy_optimal_cores < sb.cpu.cores_per_socket,
            "old CPUs had an interior energy optimum: {a:?}"
        );
        assert!(
            a.throttling_gain > 0.05,
            "Sandy Bridge throttling gain {} should be real",
            a.throttling_gain
        );
    }

    #[test]
    fn compute_bound_code_always_races() {
        // Linear speedup: all cores always best, on any CPU.
        for cpu in [
            presets::cluster_a().node.cpu,
            presets::sandy_bridge_node().cpu,
        ] {
            let z = concurrency_sweep(
                &cpu,
                cpu.cores_per_socket,
                0.9,
                100.0,
                |n| n as f64,
                |_| 1.0,
            );
            let a = analyze(&z).unwrap();
            assert_eq!(a.energy_optimal_cores, cpu.cores_per_socket);
            assert!(a.race_to_idle_is_optimal);
        }
    }
}
